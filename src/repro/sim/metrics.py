"""Simulation metrics: observed disparity, backward time, data age.

Observers subscribe to job completions and aggregate the run-time
quantities the paper's evaluation reports:

* :class:`DisparityMonitor` — per-task maximum observed time disparity
  (the ``Sim`` / ``Sim-B`` series of Fig. 6), with optional per-source-
  pair breakdown for validating pairwise bounds;
* :class:`BackwardTimeMonitor` — observed backward-time range per
  (tail task, source) for validating Lemmas 4/5 and 6;
* :class:`DataAgeMonitor` — observed data age (footnote 2);
* :class:`JobTableMonitor` — full job table for invariant checks.

All monitors accept a ``warmup`` horizon: jobs released before it are
ignored.  This realizes Lemma 6's "in the long term" premise — FIFO
buffers must fill before the shifted bounds apply — and also skips the
startup transient where channels are still empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.engine import Job, Observer
from repro.sim.provenance import Token, disparity_of, pairwise_disparity_of
from repro.units import Time


class DisparityMonitor(Observer):
    """Track the maximum observed time disparity per task.

    Args:
        tasks: Task names to monitor; ``None`` monitors every task.
        warmup: Ignore jobs released before this time.
        track_pairs: Additionally record, for every pair of sources seen
            in a token, the max pairwise timestamp difference (heavier;
            used by validation tests, not by the Fig. 6 harness).
    """

    def __init__(
        self,
        tasks: Optional[Sequence[str]] = None,
        *,
        warmup: Time = 0,
        track_pairs: bool = False,
    ) -> None:
        self._tasks: Optional[Set[str]] = set(tasks) if tasks is not None else None
        self._warmup = warmup
        self._track_pairs = track_pairs
        self.max_disparity: Dict[str, Time] = {}
        self.samples: Dict[str, int] = {}
        self.pair_max: Dict[Tuple[str, str, str], Time] = {}

    def on_job_complete(self, job: Job, token: Token) -> None:
        name = job.task.name
        if self._tasks is not None and name not in self._tasks:
            return
        if job.release < self._warmup:
            return
        disparity = disparity_of(token.provenance)
        if disparity is None:
            return
        self.samples[name] = self.samples.get(name, 0) + 1
        if disparity > self.max_disparity.get(name, -1):
            self.max_disparity[name] = disparity
        if self._track_pairs:
            sources = sorted(token.provenance)
            for i, a in enumerate(sources):
                for b in sources[i:]:
                    value = pairwise_disparity_of(token.provenance, a, b)
                    if value is None:
                        continue
                    key = (name, a, b)
                    if value > self.pair_max.get(key, -1):
                        self.pair_max[key] = value

    def disparity(self, task: str) -> Time:
        """Max observed disparity of ``task`` (0 if never observed)."""
        return self.max_disparity.get(task, 0)

    @property
    def interested_tasks(self) -> Optional[frozenset]:
        """Monitored tasks (engine fast-path dispatch filter)."""
        return frozenset(self._tasks) if self._tasks is not None else None


@dataclass
class ObservedRange:
    """Min/max of an observed quantity plus the sample count."""

    lo: Optional[Time] = None
    hi: Optional[Time] = None
    samples: int = 0

    def add(self, value: Time) -> None:
        """Fold one observation into the range."""
        if self.lo is None or value < self.lo:
            self.lo = value
        if self.hi is None or value > self.hi:
            self.hi = value
        self.samples += 1


class BackwardTimeMonitor(Observer):
    """Observed backward times per (tail task, source task).

    For a job ``J`` of the tail whose output token carries source
    timestamps ``[min_ts, max_ts]`` for source ``s``, the observed
    backward times to ``s`` span ``[r(J) - max_ts, r(J) - min_ts]``.
    On systems with a unique path from ``s`` to the tail both ends
    coincide with the true ``len`` of the immediate backward job chain,
    which Lemmas 4/5 bound.
    """

    def __init__(
        self, tails: Optional[Sequence[str]] = None, *, warmup: Time = 0
    ) -> None:
        self._tails: Optional[Set[str]] = set(tails) if tails is not None else None
        self._warmup = warmup
        self.ranges: Dict[Tuple[str, str], ObservedRange] = {}

    def on_job_complete(self, job: Job, token: Token) -> None:
        name = job.task.name
        if self._tails is not None and name not in self._tails:
            return
        if job.release < self._warmup:
            return
        for source, (min_ts, max_ts) in token.provenance.items():
            observed = self.ranges.setdefault((name, source), ObservedRange())
            observed.add(job.release - max_ts)
            observed.add(job.release - min_ts)

    def range_for(self, tail: str, source: str) -> ObservedRange:
        return self.ranges.get((tail, source), ObservedRange())

    @property
    def interested_tasks(self) -> Optional[frozenset]:
        """Monitored tails (engine fast-path dispatch filter)."""
        return frozenset(self._tails) if self._tails is not None else None


class DataAgeMonitor(Observer):
    """Observed data age per (tail task, source task).

    Age of an output = ``f(J) - t(source)`` (footnote 2 of the paper).
    """

    def __init__(
        self, tails: Optional[Sequence[str]] = None, *, warmup: Time = 0
    ) -> None:
        self._tails: Optional[Set[str]] = set(tails) if tails is not None else None
        self._warmup = warmup
        self.ranges: Dict[Tuple[str, str], ObservedRange] = {}

    def on_job_complete(self, job: Job, token: Token) -> None:
        name = job.task.name
        if self._tails is not None and name not in self._tails:
            return
        if job.release < self._warmup or job.finish is None:
            return
        for source, (min_ts, max_ts) in token.provenance.items():
            observed = self.ranges.setdefault((name, source), ObservedRange())
            observed.add(job.finish - max_ts)
            observed.add(job.finish - min_ts)

    def range_for(self, tail: str, source: str) -> ObservedRange:
        return self.ranges.get((tail, source), ObservedRange())

    @property
    def interested_tasks(self) -> Optional[frozenset]:
        """Monitored tails (engine fast-path dispatch filter)."""
        return frozenset(self._tails) if self._tails is not None else None


@dataclass
class JobRecord:
    """Immutable summary of one completed job (for invariant checks)."""

    task: str
    index: int
    unit: Optional[str]
    release: Time
    start: Time
    finish: Time


class JobTableMonitor(Observer):
    """Record every completed job; supports schedule invariant checks.

    Memory grows with the number of jobs — use only on short horizons
    (tests, examples), never in the Fig. 6 harness.
    """

    def __init__(self) -> None:
        self.jobs: List[JobRecord] = []

    def on_job_complete(self, job: Job, token: Token) -> None:
        assert job.start is not None and job.finish is not None
        self.jobs.append(
            JobRecord(
                task=job.task.name,
                index=job.index,
                unit=job.task.ecu,
                release=job.release,
                start=job.start,
                finish=job.finish,
            )
        )

    def by_task(self, name: str) -> List[JobRecord]:
        return [record for record in self.jobs if record.task == name]

    def check_invariants(self, instantaneous: Set[str]) -> None:
        """Assert fundamental schedule properties.

        * ``release <= start <= finish`` for every job;
        * jobs of one task execute in release order;
        * executing jobs on one unit never overlap (non-preemption +
          mutual exclusion); instantaneous tasks are exempt (off-CPU).
        """
        per_unit: Dict[str, List[JobRecord]] = {}
        per_task: Dict[str, List[JobRecord]] = {}
        for record in self.jobs:
            if not record.release <= record.start <= record.finish:
                raise AssertionError(f"job times out of order: {record}")
            per_task.setdefault(record.task, []).append(record)
            if record.unit is not None and record.task not in instantaneous:
                per_unit.setdefault(record.unit, []).append(record)
        for name, records in per_task.items():
            records.sort(key=lambda r: r.index)
            for earlier, later in zip(records, records[1:]):
                if later.start < earlier.start:
                    raise AssertionError(
                        f"jobs of {name} started out of order: {earlier} {later}"
                    )
        for unit, records in per_unit.items():
            records.sort(key=lambda r: r.start)
            for earlier, later in zip(records, records[1:]):
                if later.start < earlier.finish:
                    raise AssertionError(
                        f"overlapping execution on {unit}: {earlier} vs {later}"
                    )

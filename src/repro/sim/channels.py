"""Run-time channel state: overwrite registers and FIFO buffers.

The base model's channel is a buffer of size 1 with overwrite semantics
(implicit AUTOSAR communication): a write replaces the stored token, a
read peeks it without consuming.  The Section IV optimization enlarges
selected channels to FIFOs of capacity ``n``: a write enqueues and
evicts the *oldest* element when full; a read peeks the oldest element
(the "first element") without consuming.  A register is exactly the
``n = 1`` FIFO, so one implementation covers both.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.model.task import ModelError
from repro.sim.provenance import Token
from repro.units import Time


class ChannelState:
    """Mutable run-time state of one channel."""

    __slots__ = ("src", "dst", "capacity", "_buffer", "writes", "evictions")

    def __init__(self, src: str, dst: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ModelError(
                f"channel {src}->{dst}: capacity must be >= 1, got {capacity}"
            )
        self.src = src
        self.dst = dst
        self.capacity = capacity
        self._buffer: Deque[Token] = deque()
        self.writes = 0
        self.evictions = 0

    def write(self, token: Token) -> None:
        """Enqueue a token, evicting the oldest when the buffer is full."""
        if len(self._buffer) == self.capacity:
            self._buffer.popleft()
            self.evictions += 1
        self._buffer.append(token)
        self.writes += 1

    def read(self) -> Optional[Token]:
        """Peek the oldest token (non-consuming); ``None`` when empty.

        With ``capacity == 1`` the oldest token *is* the latest token,
        so this implements both the register and the FIFO semantics.
        """
        if not self._buffer:
            return None
        return self._buffer[0]

    @property
    def occupancy(self) -> int:
        """Number of tokens currently buffered."""
        return len(self._buffer)

    @property
    def is_full(self) -> bool:
        """True when a write would evict the oldest token."""
        return len(self._buffer) == self.capacity

    @property
    def is_empty(self) -> bool:
        """True when no token has been written yet."""
        return not self._buffer

    def snapshot(self) -> Tuple[Token, ...]:
        """The buffered tokens, oldest first (testing/debugging)."""
        return tuple(self._buffer)

    def validate_fifo_order(self) -> None:
        """Invariant: stored tokens are ordered by production time."""
        times = [token.produced_at for token in self._buffer]
        if times != sorted(times):
            raise AssertionError(
                f"channel {self.src}->{self.dst} lost FIFO order: {times}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChannelState({self.src}->{self.dst}, cap={self.capacity}, "
            f"occ={self.occupancy})"
        )

"""Per-task release tables: the one source of truth for release instants.

The paper's model is strictly periodic — job ``k`` of a task releases
at ``offset + k * period`` and every simulation tier derives that
arithmetic inline.  The jitter and sporadic release models
(:class:`repro.model.task.ReleaseModel`) replace the arithmetic with a
**pre-drawn release table** per ``(seed, task)``: a sorted list of
release instants within the horizon, drawn from a deterministic RNG
stream derived here.  Every tier — the general event loop, the scalar
fast path, the compiled batch loop, and the columnar C kernel — builds
the same table from the same ``(seed, task name)`` pair, so they stay
byte-identical without sharing any runtime state.

Two deliberate properties of the stream derivation:

* It is **independent of the execution-time policy stream** (the
  ``random.Random(seed)`` the simulator hands to the policy).  Periodic
  workloads draw nothing here, so adding the mechanism changed no
  existing schedule, and a jittered run consumes the policy stream
  exactly like a periodic one.
* It is keyed on the task *name*, so structurally derived scenarios
  (offset/period edits) re-draw per task rather than shifting every
  stream.

Fault plans compose as a boolean **mask over the table**: a
:class:`~repro.sim.faults.FaultPlan` never changes which instants are
drawn, only which of them produce a job — so faulted runs stay
data-independent and eligible for the batched tiers.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence, Tuple

from repro.model.task import ReleaseModel, Task
from repro.units import Time

__all__ = [
    "release_seed",
    "release_rng",
    "release_table",
    "max_jobs",
    "kept_mask",
    "split_kept",
    "needs_tables",
]


def release_seed(seed: int, name: str) -> int:
    """Deterministic per-task seed for the release stream.

    Derived by hashing ``"{seed}:{name}"`` so tasks never share a
    stream and the mapping is stable across processes and platforms
    (unlike ``hash()``, which is salted).
    """
    digest = hashlib.blake2b(
        f"{seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def release_rng(seed: int, name: str) -> random.Random:
    """The release-stream RNG of one ``(seed, task)`` pair."""
    return random.Random(release_seed(seed, name))


def release_table(
    task: Task,
    seed: Optional[int],
    duration: Time,
    offset: Optional[Time] = None,
) -> List[Time]:
    """All release instants of ``task`` in ``[0, duration]``, sorted.

    * periodic — ``offset + k * period`` (no randomness; ``seed`` may
      be ``None``);
    * jitter — one uniform draw ``J_k`` in ``[0, jitter]`` per nominal
      instant ``offset + k * period <= duration``; the jittered release
      is kept only while it stays within the horizon.  ``jitter <
      period`` (validated on the task) keeps the table strictly
      increasing;
    * sporadic — first release at ``offset``, then each gap drawn
      uniformly from ``[min_gap, max_gap]``.

    ``offset`` overrides ``task.offset`` — the batched tiers evaluate
    one compiled task set at many candidate offset vectors, and the
    table of a task at offset ``o`` must equal the table of the same
    task with its offset *edited* to ``o`` (the stream is keyed on the
    task name, not the offset).  The same ``(task, offset, seed,
    duration)`` tuple always yields the same table, which is what
    keeps the simulation tiers byte-identical.
    """
    model = task.release_model
    period = task.period
    if offset is None:
        offset = task.offset
    if model.is_periodic:
        return list(range(offset, duration + 1, period))
    if seed is None:
        raise ValueError(
            f"task {task.name!r} uses a {model.kind!r} release model; "
            f"a simulation seed is required to draw its release table"
        )
    rng = release_rng(seed, task.name)
    if model.kind == "jitter":
        jmax = model.jitter
        table = []
        for base in range(offset, duration + 1, period):
            at = base + rng.randint(0, jmax)
            if at <= duration:
                table.append(at)
        return table
    # sporadic
    lo, hi = model.min_gap, model.max_gap
    table = []
    at = offset
    while at <= duration:
        table.append(at)
        at += rng.randint(lo, hi)
    return table


def max_jobs(task: Task, duration: Time) -> int:
    """Upper bound on ``len(release_table(task, seed, duration))``.

    Used by the batched tiers to size job slots before any table is
    drawn (sporadic tables are seed-dependent in length).
    """
    model = task.release_model
    if model.kind == "sporadic":
        return duration // model.min_gap + 1
    return duration // task.period + 1


def kept_mask(plan, name: str, table: Sequence[Time]) -> List[bool]:
    """Per-entry "produces a job" mask of one task's release table.

    ``plan`` is a :class:`~repro.sim.faults.FaultPlan` or ``None``;
    entry ``k`` is ``False`` exactly when the plan suppresses the
    release (half-open windows: a release at ``window.end`` is kept).
    """
    if plan is None:
        return [True] * len(table)
    windows = plan.windows_for(name)
    if not windows:
        return [True] * len(table)
    return [
        not any(w.start <= at < w.end for w in windows) for at in table
    ]


def split_kept(
    plan, name: str, table: Sequence[Time]
) -> Tuple[List[Time], int]:
    """``(kept release instants, dropped count)`` of one table."""
    mask = kept_mask(plan, name, table)
    kept = [at for at, ok in zip(table, mask) if ok]
    return kept, len(table) - len(kept)


def needs_tables(tasks: Sequence[Task], faults=None) -> bool:
    """Whether a run must materialize release tables.

    True when any task releases non-periodically or a non-empty fault
    plan is active; strictly periodic fault-free runs keep the original
    arithmetic paths (and their byte-identical behavior) untouched.
    """
    if faults is not None and faults:
        return True
    return any(not t.release_model.is_periodic for t in tasks)

"""ASCII Gantt rendering of a recorded schedule (debugging/examples).

Turns a :class:`repro.sim.metrics.JobTableMonitor` job table into a
fixed-width timeline per task — enough to eyeball non-preemptive
execution, blocking, and the data-flow alignment that drives time
disparity, without any plotting dependency.

Legend: ``#`` executing, ``.`` released but not yet finished (queued or
blocked), `` `` idle.  One character per ``resolution`` nanoseconds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.model.task import ModelError
from repro.sim.metrics import JobTableMonitor
from repro.units import Time, format_time


def render_gantt(
    monitor: JobTableMonitor,
    *,
    start: Time = 0,
    end: Optional[Time] = None,
    width: int = 80,
    tasks: Optional[Sequence[str]] = None,
) -> str:
    """Render the recorded jobs as an ASCII Gantt chart.

    Args:
        monitor: The job table to render.
        start: Left edge of the window (ns).
        end: Right edge; defaults to the latest finish recorded.
        width: Number of characters across the time window.
        tasks: Row order; defaults to task-name order of appearance.
    """
    if not monitor.jobs:
        return "(no jobs recorded)"
    if end is None:
        end = max(job.finish for job in monitor.jobs)
    if end <= start:
        raise ModelError(f"empty window [{start}, {end}]")
    if width < 10:
        raise ModelError(f"width must be >= 10, got {width}")
    resolution = max(1, (end - start) // width)

    if tasks is None:
        seen: List[str] = []
        for job in monitor.jobs:
            if job.task not in seen:
                seen.append(job.task)
        tasks = seen

    def column(time: Time) -> int:
        return min(width - 1, max(0, (time - start) // resolution))

    lines: List[str] = []
    header = (
        f"gantt [{format_time(start)} .. {format_time(end)}] "
        f"({format_time(resolution)}/char)"
    )
    lines.append(header)
    label_width = max(len(name) for name in tasks) + 1
    for name in tasks:
        row = [" "] * width
        for job in monitor.by_task(name):
            if job.finish < start or job.release > end:
                continue
            for c in range(column(job.release), column(job.finish) + 1):
                if row[c] == " ":
                    row[c] = "."
            for c in range(column(job.start), column(job.finish) + 1):
                row[c] = "#"
        lines.append(f"{name:<{label_width}}|{''.join(row)}|")
    lines.append(f"{'':<{label_width}}|{'-' * width}|")
    return "\n".join(lines)

"""Unified analysis facade: one session object, shared caches.

Every analysis in this package ultimately reads the same two expensive
artifacts — the response-time table computed when a :class:`System` is
built, and the per-chain backward bounds memoized in a
:class:`BackwardBoundsCache` — yet the functional entry points force
callers to thread ``(system, cache)`` through every call site.
:class:`AnalysisSession` owns that state once:

    from repro.api import AnalysisSession

    session = AnalysisSession(system)
    s_diff = session.disparity("sink")                  # Theorem 2
    p_diff = session.disparity("sink", method="p-diff") # Theorem 1
    bounds = session.backward(session.chains("sink")[0])
    result = session.simulate(seconds(10), seed=7)

Sessions memoize chain enumeration and per-``(task, method)`` disparity
results on top of the shared backward-bounds cache, so repeated queries
(the CLI's report, the Fig. 6 worker computing P-diff *and* S-diff of
one sink, a sweep re-checking several tasks) never recompute anything.
The parallel experiment engine (:mod:`repro.parallel`) builds exactly
one session per generated scenario inside each worker process.

Method names accept the CLI/paper spellings (``"p-diff"``,
``"s-diff"``, ``"best"``) as well as the canonical estimator names
(``"independent"``, ``"forkjoin"``); unknown names raise ``ValueError``
listing the choices.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.analysis_regime import AnalysisRegime, regime_of
from repro.chains.backward import (
    BackwardBounds,
    BackwardBoundsCache,
    BackwardBoundsTable,
)
from repro.core.disparity import (
    TaskDisparityResult,
    normalize_method,
    worst_case_disparity,
)
from repro.model.chain import Chain, enumerate_source_chains
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.sched.response_time import ResponseTimeTable
from repro.sim.batch import (
    BatchResult,
    CompiledScenario,
    ScenarioView,
    run_batch,
)
from repro.sim.engine import Observer, SimulationResult, randomize_offsets, simulate
from repro.sim.exec_time import ExecTimePolicy, named_policy
from repro.sim.metrics import DisparityMonitor  # noqa: F401  (re-export)
from repro.units import Time

#: A policy given either by CLI name or as a callable.
PolicyLike = Union[str, ExecTimePolicy]


class AnalysisSession:
    """Shared-cache analysis facade over one :class:`System`.

    A session is cheap to create (the heavy lifting happened when the
    system was built) and amortizes everything computed afterwards:
    backward bounds, chain enumerations, and task-level disparity
    results are each computed at most once per session.

    Args:
        system: The analyzed system.
        bounds_strategy: Optional per-chain bounds function passed to
            the :class:`BackwardBoundsCache` — e.g.
            :func:`repro.let.backward_bounds_let` retargets every query
            of this session to LET semantics.
        semantics: Communication semantics this session simulates by
            default (``"implicit"`` or ``"let"``).  A LET session pins
            both sides at construction — pass
            ``bounds_strategy=backward_bounds_let`` for the analytical
            bounds and ``semantics="let"`` so :meth:`simulate`,
            :meth:`observed_disparity` and :meth:`observed_batch`
            replay LET data flow; per-call ``semantics=`` overrides
            remain available.
        compiled_cache_size: Bound on the per-``(task, semantics)``
            compiled-scenario memo (see :meth:`compiled_scenario`).
            Least-recently-used entries are evicted past the bound, so
            a long-lived session sweeping many monitored tasks holds at
            most this many compiled cores; :meth:`compiled_cache_stats`
            exposes the eviction counter.
    """

    def __init__(
        self,
        system: System,
        *,
        bounds_strategy=None,
        semantics: str = "implicit",
        compiled_cache_size: int = 8,
    ) -> None:
        if semantics not in ("implicit", "let"):
            raise ValueError(
                f"unknown semantics {semantics!r}; "
                f"choose from ('implicit', 'let')"
            )
        if compiled_cache_size < 1:
            raise ValueError(
                f"compiled_cache_size must be >= 1, got {compiled_cache_size}"
            )
        self._system = system
        self._semantics = semantics
        self._regime = regime_of(system)
        self._cache = BackwardBoundsTable(system, strategy=bounds_strategy)
        self._chains: Dict[str, Tuple[Chain, ...]] = {}
        self._results: Dict[Tuple[str, str, bool], TaskDisparityResult] = {}
        self._compiled: "OrderedDict[Tuple[str, str], CompiledScenario]" = (
            OrderedDict()
        )
        self._compiled_cache_size = compiled_cache_size
        self._compiled_hits = 0
        self._compiled_misses = 0
        self._compiled_evictions = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: CauseEffectGraph,
        *,
        validate: bool = True,
        preemptive: bool = False,
        bounds_strategy=None,
        semantics: str = "implicit",
    ) -> "AnalysisSession":
        """Validate and analyze ``graph``, then open a session on it."""
        system = System.build(graph, validate=validate, preemptive=preemptive)
        return cls(system, bounds_strategy=bounds_strategy, semantics=semantics)

    # ------------------------------------------------------------------
    # shared state
    # ------------------------------------------------------------------

    @property
    def system(self) -> System:
        """The analyzed system."""
        return self._system

    @property
    def graph(self) -> CauseEffectGraph:
        """The underlying cause-effect graph."""
        return self._system.graph

    @property
    def semantics(self) -> str:
        """The communication semantics this session simulates by default."""
        return self._semantics

    @property
    def regime(self) -> AnalysisRegime:
        """Release-model classification of this session's system.

        ``regime.analytical`` is ``True`` for strictly periodic
        workloads — the only regime in which :meth:`worst_case`,
        :meth:`backward` (under the default implicit-communication
        bounds) and :meth:`design_buffers` apply.  Jittered or sporadic
        workloads are simulation-only for those queries: they raise a
        structured :class:`~repro.analysis_regime.RegimeError`, while
        :meth:`simulate`, :meth:`observed_disparity` and
        :meth:`observed_batch` support every release model
        byte-identically across engine tiers.  LET backward bounds
        (``bounds_strategy=backward_bounds_let``) survive non-periodic
        releases with widened upper bounds (see
        :mod:`repro.let.analysis`).
        """
        return self._regime

    @property
    def cache(self) -> BackwardBoundsCache:
        """The shared backward-bounds cache (pass to legacy APIs)."""
        return self._cache

    def response_times(self) -> ResponseTimeTable:
        """The WCRT table computed when the system was built."""
        return self._system.response_times

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------

    def chains(self, task: str) -> Tuple[Chain, ...]:
        """All source-to-``task`` chains (memoized enumeration)."""
        found = self._chains.get(task)
        if found is None:
            found = enumerate_source_chains(self._system.graph, task)
            self._chains[task] = found
        return found

    def backward(self, chain: Chain) -> BackwardBounds:
        """Backward bounds ``[B(chain), W(chain)]`` (Lemmas 4 & 5)."""
        return self._cache.bounds(chain)

    def worst_case(
        self,
        task: str,
        *,
        method: str = "forkjoin",
        truncate_suffix: bool = True,
    ) -> TaskDisparityResult:
        """Full disparity result of ``task`` with per-pair evidence.

        Results are memoized per ``(task, method, truncate_suffix)``;
        the memo key uses the canonical method name, so
        ``method="s-diff"`` and ``method="forkjoin"`` share one entry.
        """
        canonical = normalize_method(method)
        key = (task, canonical, truncate_suffix)
        found = self._results.get(key)
        if found is None:
            found = worst_case_disparity(
                self._system,
                task,
                method=canonical,
                truncate_suffix=truncate_suffix,
                cache=self._cache,
                chains=self.chains(task),
            )
            self._results[key] = found
        return found

    def disparity(
        self,
        task: str,
        *,
        method: str = "forkjoin",
        truncate_suffix: bool = True,
    ) -> Time:
        """Worst-case time disparity bound of ``task`` (memoized)."""
        return self.worst_case(
            task, method=method, truncate_suffix=truncate_suffix
        ).bound

    def all_sinks(
        self, *, method: str = "forkjoin", truncate_suffix: bool = True
    ) -> Dict[str, TaskDisparityResult]:
        """Disparity results of every sink task of the graph."""
        return {
            sink: self.worst_case(
                sink, method=method, truncate_suffix=truncate_suffix
            )
            for sink in self._system.graph.sinks()
        }

    def check_requirement(
        self, task: str, threshold: Time, *, method: str = "forkjoin"
    ) -> bool:
        """True when the disparity bound of ``task`` is within ``threshold``."""
        return self.disparity(task, method=method) <= threshold

    def design_buffers(self, task: str, *, method: str = "forkjoin"):
        """Multi-chain buffer design (Algorithm 1 generalization)."""
        from repro.buffers.sizing import design_buffers_multi

        return design_buffers_multi(
            self._system, task, method=normalize_method(method)
        )

    def with_buffer_plan(
        self, plan: Dict[Tuple[str, str], int]
    ) -> "AnalysisSession":
        """A new session over the system with ``plan`` applied.

        Buffer capacities do not change scheduling, so the response-time
        table carries over; backward bounds do change (Lemma 6), so the
        new session starts a fresh bounds cache.
        """
        return AnalysisSession(self._system.with_buffer_plan(plan))

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def simulate(
        self,
        duration: Time,
        *,
        seed: int = 0,
        policy: PolicyLike = "uniform",
        observers: Sequence[Observer] = (),
        semantics: Optional[str] = None,
        faults=None,
        offsets_rng: Optional[random.Random] = None,
    ) -> SimulationResult:
        """Simulate this session's system (optionally with fresh offsets).

        Args:
            duration: Simulated horizon.
            seed: Per-run RNG seed (execution-time draws).
            policy: Execution-time policy — a CLI name (``"uniform"``,
                ``"wcet"``, ``"bcet"``, ``"extremes"``) or a callable.
            observers: Metric collectors (see :mod:`repro.sim.metrics`).
            semantics: ``"implicit"`` or ``"let"``; defaults to the
                semantics the session was constructed with.
            faults: Optional release-dropout plan.
            offsets_rng: When given, every task first receives a random
                offset in ``[1, T]`` drawn from this generator (the
                paper's evaluation setup); response times are reused
                since offsets do not affect schedulability.
        """
        resolved = named_policy(policy) if isinstance(policy, str) else policy
        system = self._system
        if offsets_rng is not None:
            system = System(
                graph=randomize_offsets(system.graph, offsets_rng),
                response_times=system.response_times,
            )
        return simulate(
            system,
            duration,
            seed=seed,
            policy=resolved,
            observers=observers,
            semantics=self._semantics if semantics is None else semantics,
            faults=faults,
        )

    def observed_disparity(
        self,
        task: str,
        *,
        sims: int,
        duration: Time,
        warmup: Time = 0,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        policy: PolicyLike = "uniform",
        semantics: Optional[str] = None,
        engine: str = "auto",
    ) -> Time:
        """Max observed disparity of ``task`` over randomized runs.

        Runs ``sims`` simulations, each with fresh random offsets and a
        fresh execution-time seed drawn from ``rng`` (or from a local
        generator seeded with ``seed``), and returns the largest
        disparity any run observed — the ``Sim`` estimator of Fig. 6,
        a *lower* bound on the true worst case.

        Replications run through the batched engine
        (:mod:`repro.sim.batch`): the scenario is compiled once per
        session and reused, with results byte-identical to ``sims``
        sequential :meth:`simulate` calls under the same generator.
        ``engine`` pins a tier (``"auto"``/``"columnar"``/
        ``"compiled"``/``"simulator"``) exactly as in
        :func:`~repro.sim.batch.run_batch`.
        """
        return self.observed_batch(
            task,
            sims=sims,
            duration=duration,
            warmup=warmup,
            rng=rng,
            seed=seed,
            policy=policy,
            semantics=semantics,
            engine=engine,
        ).max_disparity

    def compiled_scenario(
        self, task: str, *, semantics: Optional[str] = None
    ) -> CompiledScenario:
        """The offset-independent compiled core of ``task`` (memoized).

        A :class:`~repro.sim.batch.CompiledScenario` carries only
        offset-independent state (task/unit tables, priority ranks,
        provenance domain, backward closure, cached release-stream
        tables), so one core per ``(task, semantics)`` serves every
        replication and every offset candidate of this session:
        :meth:`observed_batch` replays it per replication and callers
        can derive per-candidate views directly via
        ``compiled_scenario(task).with_offsets(offsets)``.
        """
        sem = self._semantics if semantics is None else semantics
        key = (task, sem)
        compiled = self._compiled.get(key)
        if compiled is None:
            self._compiled_misses += 1
            compiled = CompiledScenario(self._system, task, semantics=sem)
            self._compiled[key] = compiled
            if len(self._compiled) > self._compiled_cache_size:
                self._compiled.popitem(last=False)
                self._compiled_evictions += 1
        else:
            self._compiled_hits += 1
            self._compiled.move_to_end(key)
        return compiled

    def compiled_cache_stats(self) -> Dict[str, int]:
        """Counters of the bounded compiled-scenario memo.

        ``size``/``maxsize`` describe the LRU occupancy, ``hits`` /
        ``misses`` the :meth:`compiled_scenario` traffic, and
        ``evictions`` how many compiled cores a long-lived session has
        already dropped — the number the future service layer alarms
        on when a sweep thrashes the bound.
        """
        return {
            "size": len(self._compiled),
            "maxsize": self._compiled_cache_size,
            "hits": self._compiled_hits,
            "misses": self._compiled_misses,
            "evictions": self._compiled_evictions,
        }

    def edit_scenario(
        self, task: str, *, semantics: Optional[str] = None, **changes
    ) -> ScenarioView:
        """A delta view of this session's compiled core of ``task``.

        Session-level entry to :meth:`CompiledScenario.edit`: the
        compiled core is fetched from (or admitted to) the bounded
        memo, then the edit derives a view that shares every table the
        edit does not touch.  Accepted edit keys are ``offsets``,
        ``periods``, ``priorities``, and ``capacities``; unknown keys
        raise ``ValueError`` listing the choices, mirroring the
        method-name validation of :meth:`disparity`.

            view = session.edit_scenario("sink", periods={"cam": ms(40)})
            observed = view.disparity(seed=3, duration=seconds(2))
        """
        return self.compiled_scenario(task, semantics=semantics).edit(**changes)

    def observed_batch(
        self,
        task: str,
        *,
        sims: int,
        duration: Time,
        warmup: Time = 0,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        policy: PolicyLike = "uniform",
        semantics: Optional[str] = None,
        engine: str = "auto",
    ) -> BatchResult:
        """Batched replications of ``task`` with per-run disparities.

        Like :meth:`observed_disparity` but returns the full
        :class:`~repro.sim.batch.BatchResult` (per-replication
        disparities, percentiles, engine label and phase timing).  The
        semantics default to the session's (a LET session replays LET
        data flow here, never implicit), and the offset-independent
        compiled core is cached per ``(task, semantics)`` on this
        session (see :meth:`compiled_scenario`) — each replication is
        an offset-delta replay of that shared core.  ``engine`` selects
        the replay tier (``"auto"`` picks the fastest eligible one; see
        :func:`~repro.sim.batch.run_batch`).
        """
        sem = self._semantics if semantics is None else semantics
        compiled = self.compiled_scenario(task, semantics=sem)
        return run_batch(
            self._system,
            task,
            sims=sims,
            duration=duration,
            warmup=warmup,
            rng=rng,
            seed=seed,
            policy=policy,
            compiled=compiled,
            semantics=sem,
            engine=engine,
        )

    def observed_stats(
        self,
        task: str,
        *,
        sims: int,
        duration: Time,
        warmup: Time = 0,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        policy: PolicyLike = "uniform",
        semantics: Optional[str] = None,
        engine: str = "auto",
        chunk: int = 256,
        quantiles: Sequence[float] = (0.5, 0.9, 0.99),
    ) -> Dict[str, object]:
        """Streaming summary of ``sims`` replications, memory O(chunk).

        Like :meth:`observed_batch` but never materializes the full
        per-replication disparity list: replications run in chunks of
        ``chunk`` through the batched engine and each chunk is folded
        into O(1) streaming accumulators
        (:class:`~repro.parallel.aggregate.StreamingStats` +
        :class:`~repro.parallel.aggregate.P2Quantile` sketches).  The
        chunks consume the **same** generator stream one big batch
        would, so ``count``/``max``/``min`` are exactly the values
        :meth:`observed_batch` reports for the same arguments; ``mean``
        / ``std`` are Welford-updated and ``quantiles`` are P²
        estimates (a few percent on unimodal data).  This is the
        session-level entry for million-replication studies that only
        need the summary.
        """
        from repro.parallel.aggregate import P2Quantile, StreamingStats

        if sims < 0:
            raise ValueError(f"sims must be >= 0, got {sims}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        generator = rng if rng is not None else random.Random(seed)
        stats = StreamingStats()
        sketches = {q: P2Quantile(q) for q in quantiles}
        engines = []
        remaining = sims
        while remaining > 0:
            batch = self.observed_batch(
                task,
                sims=min(chunk, remaining),
                duration=duration,
                warmup=warmup,
                rng=generator,
                policy=policy,
                semantics=semantics,
                engine=engine,
            )
            remaining -= batch.sims
            if not engines or engines[-1] != batch.engine:
                engines.append(batch.engine)
            for value in batch.disparities:
                stats.add(value)
                for sketch in sketches.values():
                    sketch.add(value)
        summary: Dict[str, object] = {
            "task": task,
            "count": stats.count,
            "engine": "+".join(engines) if engines else None,
        }
        if stats.count:
            summary.update(
                max=int(stats.max),
                min=int(stats.min),
                mean=stats.mean,
                std=stats.std,
                quantiles={
                    f"p{int(q * 100)}": sketch.value
                    for q, sketch in sketches.items()
                },
            )
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnalysisSession({len(self._system.graph)} tasks, "
            f"{len(self._cache)} cached chains, "
            f"{len(self._results)} cached results)"
        )


__all__ = ["AnalysisSession", "PolicyLike"]

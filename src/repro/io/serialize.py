"""JSON (de)serialization of cause-effect graphs and analysis results.

A deployed graph is the complete, self-contained description of a
system (tasks with mapping/priorities/offsets plus channels with
capacities); response times and all bounds are derived.  The format is
a stable, human-editable JSON document so workloads can be shared,
versioned, and re-analyzed:

```json
{
  "format": "repro-cause-effect-graph",
  "version": 1,
  "tasks": [{"name": "cam", "period_ns": 10000000, ...}, ...],
  "channels": [{"src": "cam", "dst": "fuse", "capacity": 1}, ...]
}
```
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.model.graph import CauseEffectGraph
from repro.model.task import ModelError, ReleaseModel, Task

FORMAT_NAME = "repro-cause-effect-graph"
FORMAT_VERSION = 1


def _release_to_dict(model: ReleaseModel) -> Dict[str, Any]:
    if model.kind == "jitter":
        return {"kind": "jitter", "jitter_ns": model.jitter}
    return {
        "kind": "sporadic",
        "min_gap_ns": model.min_gap,
        "max_gap_ns": model.max_gap,
    }


def _release_from_dict(entry: Any) -> ReleaseModel:
    if not isinstance(entry, dict):
        raise ModelError(
            f"release entry must be an object, got {type(entry).__name__}"
        )
    kind = entry.get("kind", "periodic")
    if kind == "periodic":
        return ReleaseModel.periodic()
    if kind == "jitter":
        return ReleaseModel.jittered(int(entry["jitter_ns"]))
    if kind == "sporadic":
        return ReleaseModel.sporadic(
            int(entry["min_gap_ns"]), int(entry["max_gap_ns"])
        )
    raise ModelError(f"unknown release model kind {kind!r}")


def graph_to_dict(graph: CauseEffectGraph) -> Dict[str, Any]:
    """Serialize a graph to a JSON-compatible dictionary."""
    def task_entry(task: Task) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "name": task.name,
            "period_ns": task.period,
            "wcet_ns": task.wcet,
            "bcet_ns": task.bcet,
            "ecu": task.ecu,
            "priority": task.priority,
            "offset_ns": task.offset,
            "kind": task.kind,
        }
        # Strictly periodic releases (the paper's model) stay implicit,
        # so documents written before release models existed round-trip
        # unchanged and older readers only fail on files that need it.
        if not task.release_model.is_periodic:
            entry["release"] = _release_to_dict(task.release_model)
        return entry

    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "tasks": [task_entry(task) for task in graph.tasks],
        "channels": [
            {"src": channel.src, "dst": channel.dst, "capacity": channel.capacity}
            for channel in graph.channels
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> CauseEffectGraph:
    """Deserialize a graph; validates format markers and structure."""
    if not isinstance(data, dict):
        raise ModelError(f"expected a JSON object, got {type(data).__name__}")
    if data.get("format") != FORMAT_NAME:
        raise ModelError(
            f"not a {FORMAT_NAME} document (format={data.get('format')!r})"
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    graph = CauseEffectGraph()
    for entry in data.get("tasks", []):
        try:
            release = ReleaseModel.periodic()
            if "release" in entry:
                release = _release_from_dict(entry["release"])
            graph.add_task(
                Task(
                    name=entry["name"],
                    period=int(entry["period_ns"]),
                    wcet=int(entry["wcet_ns"]),
                    bcet=int(entry["bcet_ns"]),
                    ecu=entry.get("ecu"),
                    priority=entry.get("priority"),
                    offset=int(entry.get("offset_ns", 0)),
                    kind=entry.get("kind", "compute"),
                    release_model=release,
                )
            )
        except KeyError as exc:
            raise ModelError(f"task entry missing field {exc}") from None
    for entry in data.get("channels", []):
        try:
            graph.add_channel(
                entry["src"], entry["dst"], capacity=int(entry.get("capacity", 1))
            )
        except KeyError as exc:
            raise ModelError(f"channel entry missing field {exc}") from None
    return graph


def save_graph(graph: CauseEffectGraph, path: Union[str, Path]) -> None:
    """Write a graph to a JSON file."""
    Path(path).write_text(
        json.dumps(graph_to_dict(graph), indent=2, sort_keys=False) + "\n"
    )


def load_graph(path: Union[str, Path]) -> CauseEffectGraph:
    """Read a graph from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ModelError(f"invalid JSON in {path}: {exc}") from None
    return graph_from_dict(data)

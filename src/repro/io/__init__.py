"""Persistence: JSON workload files."""

from repro.io.serialize import (
    FORMAT_NAME,
    FORMAT_VERSION,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "save_graph",
]

"""Full-system analysis reports.

One call produces everything a timing engineer asks of a deployment:
per-unit utilization and response times, per-sink chain inventory with
backward-time windows, disparity bounds under both theorems, end-to-end
latency figures, and (optionally) requirement margins.  The structured
result renders to aligned plain text for the CLI, logs, and docs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chains.backward import BackwardBoundsCache
from repro.chains.latency import max_data_age, max_reaction_time_np
from repro.core.disparity import worst_case_disparity
from repro.model.chain import Chain, enumerate_source_chains
from repro.model.system import System
from repro.sched.utilization import unit_utilizations
from repro.units import Time, format_time


@dataclass(frozen=True)
class ChainReport:
    """Per-chain timing facts."""

    chain: Chain
    wcbt: Time
    bcbt: Time
    max_age: Time
    max_reaction: Time


@dataclass(frozen=True)
class SinkReport:
    """Disparity and latency summary of one sink task."""

    task: str
    n_chains: int
    p_diff: Time
    s_diff: Time
    chains: Tuple[ChainReport, ...]
    requirement: Optional[Time] = None

    @property
    def requirement_met(self) -> Optional[bool]:
        """Whether the S-diff bound meets the requirement (None if unset)."""
        if self.requirement is None:
            return None
        return self.s_diff <= self.requirement


@dataclass(frozen=True)
class SystemReport:
    """Complete analysis snapshot of a deployed system."""

    n_tasks: int
    n_channels: int
    utilizations: Dict[str, float]
    response_times: Dict[str, Time]
    sinks: Tuple[SinkReport, ...]


def analyze_system(
    system: System,
    *,
    requirements: Optional[Dict[str, Time]] = None,
) -> SystemReport:
    """Run the full analysis battery over every sink of the system."""
    requirements = requirements or {}
    cache = BackwardBoundsCache(system)
    sinks: List[SinkReport] = []
    for sink in system.graph.sinks():
        chains = enumerate_source_chains(system.graph, sink)
        chain_reports = tuple(
            ChainReport(
                chain=chain,
                wcbt=cache.wcbt(chain),
                bcbt=cache.bcbt(chain),
                max_age=max_data_age(chain, system),
                max_reaction=max_reaction_time_np(chain, system),
            )
            for chain in chains
        )
        p_diff = worst_case_disparity(
            system, sink, method="independent", cache=cache
        ).bound
        s_diff = worst_case_disparity(
            system, sink, method="forkjoin", cache=cache
        ).bound
        sinks.append(
            SinkReport(
                task=sink,
                n_chains=len(chains),
                p_diff=p_diff,
                s_diff=s_diff,
                chains=chain_reports,
                requirement=requirements.get(sink),
            )
        )
    return SystemReport(
        n_tasks=len(system.graph),
        n_channels=len(system.graph.channels),
        utilizations=unit_utilizations(system.graph.tasks),
        response_times={
            task.name: system.R(task.name) for task in system.graph.tasks
        },
        sinks=tuple(sinks),
    )


def render_report(report: SystemReport, *, max_chains_per_sink: int = 8) -> str:
    """Aligned plain-text rendering of a :class:`SystemReport`."""
    lines: List[str] = []
    lines.append(
        f"system: {report.n_tasks} tasks, {report.n_channels} channels"
    )
    lines.append("utilization per unit:")
    for unit, utilization in sorted(report.utilizations.items()):
        lines.append(f"  {unit:<8} {utilization * 100:6.2f}%")
    for sink in report.sinks:
        lines.append("")
        lines.append(f"sink {sink.task!r}: {sink.n_chains} chains")
        lines.append(
            f"  disparity bounds: P-diff {format_time(sink.p_diff)}, "
            f"S-diff {format_time(sink.s_diff)}"
        )
        if sink.requirement is not None:
            verdict = "OK" if sink.requirement_met else "VIOLATED"
            lines.append(
                f"  requirement {format_time(sink.requirement)}: {verdict}"
            )
        for chain_report in sink.chains[:max_chains_per_sink]:
            lines.append(
                f"  {' -> '.join(chain_report.chain.tasks)}"
            )
            lines.append(
                f"    backward [{format_time(chain_report.bcbt)}, "
                f"{format_time(chain_report.wcbt)}], "
                f"age <= {format_time(chain_report.max_age)}, "
                f"reaction <= {format_time(chain_report.max_reaction)}"
            )
        hidden = sink.n_chains - max_chains_per_sink
        if hidden > 0:
            lines.append(f"  ... and {hidden} more chains")
    return "\n".join(lines)

"""Per-chain timing analysis: backward time, baselines, latency."""

from repro.chains.backward import (
    BackwardBounds,
    BackwardBoundsCache,
    BackwardBoundsTable,
    backward_bounds,
    bcbt_lower,
    hop_budget,
    wcbt_upper,
)
from repro.chains.duerr import (
    bcbt_lower_agnostic,
    bcbt_lower_trivial,
    wcbt_upper_agnostic,
)
from repro.chains.latency import (
    max_data_age,
    max_data_age_agnostic,
    max_reaction_time,
    max_reaction_time_np,
)

__all__ = [
    "BackwardBounds",
    "BackwardBoundsCache",
    "BackwardBoundsTable",
    "backward_bounds",
    "bcbt_lower",
    "hop_budget",
    "wcbt_upper",
    "bcbt_lower_agnostic",
    "bcbt_lower_trivial",
    "wcbt_upper_agnostic",
    "max_data_age",
    "max_data_age_agnostic",
    "max_reaction_time",
    "max_reaction_time_np",
]

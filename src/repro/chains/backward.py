"""Backward-time bounds under non-preemptive fixed-priority scheduling.

The *backward time* of an immediate backward job chain
``len(pi_k) = r(pi_k^{|pi|}) - r(pi_k^1)`` measures how far in the past
the source datum of an output was released (Section II-C).  The paper
bounds it from above (Lemma 4) and below (Lemma 5):

* **Lemma 4 (WCBT upper bound).**  ``W(pi) = sum_{i=1}^{|pi|-1} theta_i``
  where the per-hop budget ``theta_i`` depends on where consecutive
  tasks run:

  - different units:        ``theta_i = T(pi^i) + R(pi^i)``
  - same unit, hp producer: ``theta_i = T(pi^i)``
  - same unit, lp producer: ``theta_i = T(pi^i) + R(pi^i) - (W(pi^i) + B(pi^{i+1}))``

  The same-unit refinements are what make this bound tighter than the
  scheduling-agnostic state of the art (see :mod:`repro.chains.duerr`).

* **Lemma 5 (BCBT lower bound).**
  ``B(pi) = sum_{i=1}^{|pi|} B(pi^i) - R(pi^{|pi|})`` — possibly
  *negative*: the source job of an immediate backward job chain can be
  released after the tail job (the tail reads data produced by a job
  that started before it but was released later... strictly, a negative
  bound simply reflects that release-time differences can invert).

Both bounds apply per chain and are the ``W``/``B`` ingredients of all
disparity theorems.

**Buffered channels (Lemma 6, generalized).**  Section IV enlarges the
input channel of a chain's second task to a FIFO of capacity ``n``; in
the long term (buffer full) a reader always peeks the oldest element,
whose timestamp trails the newest arrival by ``(n-1)`` producer
periods, so both bounds shift: ``W(pi)^n = W(pi) + (n-1) T(pi^1)`` and
``B(pi)^n = B(pi) + (n-1) T(pi^1)``.  The same argument applies to a
FIFO on *any* hop ``(pi^i, pi^{i+1})`` with shift ``(n-1) T(pi^i)``;
the functions below therefore account for every channel capacity along
the chain, with Lemma 6 as the head-channel special case.  The shifted
*lower* bound is only valid once buffers are full — the simulator's
metrics use a warm-up horizon accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.analysis_regime import regime_of
from repro.model.chain import Chain
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time


@dataclass(frozen=True)
class BackwardBounds:
    """The ``[B(pi), W(pi)]`` interval of a chain's backward time."""

    chain: Chain
    wcbt: Time
    bcbt: Time

    def __post_init__(self) -> None:
        if self.bcbt > self.wcbt:
            raise ModelError(
                f"inconsistent backward bounds for {self.chain}: "
                f"BCBT={self.bcbt} > WCBT={self.wcbt}"
            )

    @property
    def width(self) -> Time:
        """Width of the sampling window this chain induces."""
        return self.wcbt - self.bcbt


def hop_budget(system: System, producer: str, consumer: str) -> Time:
    """``theta_i`` of Lemma 4 for one hop ``producer -> consumer``.

    The producer must actually precede the consumer in the graph; the
    caller (``wcbt_upper``) guarantees this by walking a validated
    chain.
    """
    T_p = system.T(producer)
    R_p = system.R(producer)
    if not system.same_unit(producer, consumer):
        return T_p + R_p
    if system.in_hp(producer, consumer):
        return T_p
    # Same unit, producer has lower priority than consumer.
    return T_p + R_p - (system.W(producer) + system.B(consumer))


def buffer_shift(chain: Chain, system: System) -> Time:
    """Total backward-time shift from buffered channels along the chain.

    ``sum over hops of (capacity - 1) * T(producer)`` — zero for the
    all-register base model; the head-channel case is Lemma 6.
    """
    shift = 0
    for producer, consumer in chain.edges():
        capacity = system.graph.channel(producer, consumer).capacity
        if capacity > 1:
            shift += (capacity - 1) * system.T(producer)
    return shift


def wcbt_upper(chain: Chain, system: System) -> Time:
    """Lemma 4 (+ Lemma 6 shift): upper bound ``W(pi)`` on the WCBT.

    Periodic releases only: the per-hop budget ``theta_i`` counts
    whole producer periods between reads, which release jitter and
    sporadic gaps invalidate (see :mod:`repro.analysis_regime`).
    """
    regime_of(system).require_analytical("WCBT upper bound (Lemma 4)")
    chain.validate(system.graph)
    if len(chain) == 1:
        return 0
    total = 0
    for producer, consumer in chain.edges():
        total += hop_budget(system, producer, consumer)
    return total + buffer_shift(chain, system)


def bcbt_lower(chain: Chain, system: System) -> Time:
    """Lemma 5 (+ Lemma 6 shift): lower bound ``B(pi)`` on the BCBT.

    With buffered channels the bound holds in the long term only
    (buffers full); see the module docstring.  Periodic releases only,
    as for :func:`wcbt_upper`.
    """
    regime_of(system).require_analytical("BCBT lower bound (Lemma 5)")
    chain.validate(system.graph)
    if len(chain) == 1:
        return 0
    total = sum(system.B(name) for name in chain)
    return total - system.R(chain.tail) + buffer_shift(chain, system)


def backward_bounds(chain: Chain, system: System) -> BackwardBounds:
    """Both bounds of a chain as a :class:`BackwardBounds` record."""
    return BackwardBounds(
        chain=chain,
        wcbt=wcbt_upper(chain, system),
        bcbt=bcbt_lower(chain, system),
    )


class BackwardBoundsCache:
    """Memoized per-chain backward bounds.

    The disparity analysis of a task evaluates ``W``/``B`` for every
    sub-chain of every pair of chains in ``P``; sub-chains repeat
    heavily across pairs (common prefixes through the fork-join
    structure), so memoization is a large constant-factor win at Fig. 6
    scale.

    ``strategy`` computes the bounds for one chain and defaults to the
    paper's non-preemptive bounds (:func:`backward_bounds`).  Passing a
    different strategy retargets *every* disparity theorem to another
    communication/scheduling model — e.g.
    :func:`repro.let.backward_bounds_let` for Logical Execution Time —
    because Theorems 1-3 only consume the per-chain ``[B, W]``
    intervals plus task periodicity.
    """

    def __init__(self, system: System, strategy=None) -> None:
        self._system = system
        self._strategy = strategy if strategy is not None else backward_bounds
        self._cache: Dict[Tuple[str, ...], BackwardBounds] = {}

    @property
    def system(self) -> System:
        """The system the cached bounds were computed against."""
        return self._system

    def bounds(self, chain: Chain) -> BackwardBounds:
        """Bounds of ``chain``, computed once and memoized."""
        key = chain.tasks
        found = self._cache.get(key)
        if found is None:
            found = self._strategy(chain, self._system)
            self._cache[key] = found
        return found

    def wcbt(self, chain: Chain) -> Time:
        """Memoized ``W(chain)``."""
        return self.bounds(chain).wcbt

    def bcbt(self, chain: Chain) -> Time:
        """Memoized ``B(chain)``."""
        return self.bounds(chain).bcbt

    def register(self, chains: Iterable[Chain]) -> None:
        """Pre-compute the bounds of ``chains`` (and their prefixes).

        A no-op beyond warming the memo: callers that are about to
        evaluate an all-pairs loop (``worst_case_disparity``) register
        the enumerated chains up front so the loop itself only performs
        dictionary hits.
        """
        for chain in chains:
            self.bounds(chain)

    def __len__(self) -> int:
        return len(self._cache)


class BackwardBoundsTable(BackwardBoundsCache):
    """DAG-shared backward bounds: a prefix-sharing dynamic program.

    The disparity analysis evaluates ``W``/``B`` for every sub-chain of
    every decomposition of every chain pair, and those sub-chains share
    almost all of their prefixes (they are paths through one DAG).  The
    plain :class:`BackwardBoundsCache` memoizes whole chains but still
    pays ``O(len(chain))`` per *distinct* chain; this table instead

    * computes each per-hop ingredient exactly once per **edge**
      (``theta_i`` of Lemma 4 plus the Lemma 6 capacity shift folded
      into one interned edge weight) and once per **task** (``B`` and
      ``R``), and
    * accumulates ``W``/``B`` along a trie of chain prefixes, so a
      chain costs ``O(1)`` amortized once any chain sharing its prefix
      has been seen.

    Both lemmas are sums of per-edge/per-task terms, so the prefix
    recurrence is exact:

        W(pi[:k+1])  = W(pi[:k])  + theta(pi^k, pi^{k+1}) + shift(edge)
        SB(pi[:k+1]) = SB(pi[:k]) + B(pi^{k+1}) + shift(edge)
        B(pi)        = SB(pi) - R(pi.tail)          (len > 1)

    with ``W = B = 0`` for single-task chains, matching
    :func:`wcbt_upper` / :func:`bcbt_lower` bit for bit.

    A non-default ``strategy`` (e.g. LET retargeting) bypasses the DP
    and behaves exactly like the base cache — the recurrence above is
    only known to be sound for the paper's additive bounds.
    """

    def __init__(self, system: System, strategy=None) -> None:
        super().__init__(system, strategy=strategy)
        self._shared_dp = strategy is None
        # Classified once; checked lazily in bounds() so a session over
        # a non-periodic system can still simulate — only the first
        # analytical query raises.
        self._regime = regime_of(system)
        # tasks-tuple -> (W accumulator, sum-of-B accumulator), both
        # including every capacity shift along the prefix.
        self._prefix: Dict[Tuple[str, ...], Tuple[Time, Time]] = {}
        self._edge_weight: Dict[Tuple[str, str], Tuple[Time, Time]] = {}
        self._task_b: Dict[str, Time] = {}
        self._task_r: Dict[str, Time] = {}

    def _edge(self, producer: str, consumer: str) -> Tuple[Time, Time]:
        """Interned ``(theta + shift, B(consumer) + shift)`` of one hop."""
        key = (producer, consumer)
        found = self._edge_weight.get(key)
        if found is None:
            system = self._system
            channel = system.graph.channel(producer, consumer)
            shift = (channel.capacity - 1) * system.T(producer)
            theta = hop_budget(system, producer, consumer)
            found = (theta + shift, self._b(consumer) + shift)
            self._edge_weight[key] = found
        return found

    def _b(self, name: str) -> Time:
        found = self._task_b.get(name)
        if found is None:
            found = self._task_b[name] = self._system.B(name)
        return found

    def _r(self, name: str) -> Time:
        found = self._task_r.get(name)
        if found is None:
            found = self._task_r[name] = self._system.R(name)
        return found

    def _accumulators(self, tasks: Tuple[str, ...]) -> Tuple[Time, Time]:
        """``(W, sum B)`` of the prefix ``tasks``, extending the trie.

        Walks back to the longest already-known prefix and extends it
        one edge at a time, memoizing every intermediate prefix (they
        are the alphas/betas of upcoming decompositions).
        """
        prefix = self._prefix
        found = prefix.get(tasks)
        if found is not None:
            return found
        # Find the longest memoized ancestor.
        known = len(tasks) - 1
        while known > 1 and tasks[:known] not in prefix:
            known -= 1
        if known <= 1:
            acc = (0, self._b(tasks[0]))
            prefix[tasks[:1]] = acc
            known = 1
        else:
            acc = prefix[tasks[:known]]
        w_acc, sb_acc = acc
        for index in range(known, len(tasks)):
            w_edge, b_edge = self._edge(tasks[index - 1], tasks[index])
            w_acc += w_edge
            sb_acc += b_edge
            prefix[tasks[: index + 1]] = (w_acc, sb_acc)
        return (w_acc, sb_acc)

    def bounds(self, chain: Chain) -> BackwardBounds:
        """Bounds of ``chain`` via the prefix DP (memoized)."""
        if not self._shared_dp:
            return super().bounds(chain)
        # The DP inlines Lemmas 4/5 without calling wcbt_upper /
        # bcbt_lower, so it must repeat their periodic-release gate.
        self._regime.require_analytical("backward bounds (Lemmas 4-5)")
        key = chain.tasks
        found = self._cache.get(key)
        if found is None:
            if len(key) == 1:
                found = BackwardBounds(chain=chain, wcbt=0, bcbt=0)
            else:
                try:
                    w_acc, sb_acc = self._accumulators(key)
                except KeyError as exc:
                    # Unknown edge or task: surface the same diagnostic
                    # the per-chain path produces.
                    chain.validate(self._system.graph)
                    raise ModelError(
                        f"backward bounds lookup failed for {chain}: {exc}"
                    ) from exc
                found = BackwardBounds(
                    chain=chain, wcbt=w_acc, bcbt=sb_acc - self._r(key[-1])
                )
            self._cache[key] = found
        return found

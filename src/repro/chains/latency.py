"""End-to-end latency metrics derived from backward time (extension).

The paper's footnote 2 relates the backward time to the classical
*maximum data age*: the data age of the output of the k-th tail job is
``f(pi_k^{|pi|}) - r(pi_k^1)``, i.e. the backward time plus the tail
job's response time.  This module derives the standard end-to-end
metrics from the backward-time machinery so the library covers the
wider cause-effect-chain analysis territory the introduction surveys:

* **maximum data age** — freshness of the data an output is based on;
* **maximum reaction time** — stimulus-to-response latency, bounded by
  the classical Davare-style composition (one period plus one response
  time per stage), which is also the standard baseline in the
  literature the paper cites ([1]-[5]).
"""

from __future__ import annotations

from repro.chains.backward import wcbt_upper
from repro.chains.duerr import wcbt_upper_agnostic
from repro.model.chain import Chain
from repro.model.system import System
from repro.units import Time


def max_data_age(chain: Chain, system: System) -> Time:
    """Upper bound on the maximum data age of ``chain``.

    ``age = len(backward chain) + (f(tail) - r(tail)) <= W(pi) + R(tail)``,
    using the non-preemptive WCBT bound of Lemma 4.
    """
    return wcbt_upper(chain, system) + system.R(chain.tail)


def max_data_age_agnostic(chain: Chain, system: System) -> Time:
    """Scheduling-agnostic data-age bound (Dürr-style baseline)."""
    return wcbt_upper_agnostic(chain, system) + system.R(chain.tail)


def max_reaction_time(chain: Chain, system: System) -> Time:
    """Davare-style maximum reaction time bound.

    A stimulus arriving just after a sampling instant waits up to one
    full period at every stage and then the stage's response time:
    ``sum_i (T(pi^i) + R(pi^i))``.  Source stages contribute only their
    period (``R = 0``).
    """
    chain.validate(system.graph)
    return sum(system.T(name) + system.R(name) for name in chain)


def max_reaction_time_np(chain: Chain, system: System) -> Time:
    """Reaction-time bound sharpened with the non-preemptive hop budgets.

    A stimulus at time ``t`` is captured by a source job released at
    ``t_r <= t + T(head)``.  Let ``J*`` be the first tail job whose
    immediate backward job chain originates from a source job released
    at or after ``t_r``; the preceding tail job's source precedes
    ``t_r``, so its release is below ``t_r + W(pi)`` (Lemma 4), and
    ``J*`` is released at most one tail period later and finishes within
    its response time.  Hence

        reaction <= T(head) + W(pi) + T(tail) + R(tail).

    On chains with same-unit hops this is tighter than the Davare-style
    :func:`max_reaction_time`; the reported value is the minimum of the
    two (both are safe).
    """
    chain.validate(system.graph)
    davare = max_reaction_time(chain, system)
    if len(chain) == 1:
        return davare
    sharpened = (
        system.T(chain.head)
        + wcbt_upper(chain, system)
        + system.T(chain.tail)
        + system.R(chain.tail)
    )
    return min(davare, sharpened)

"""Scheduling-agnostic backward-time bounds (Dürr et al. style baseline).

Dürr, von der Brüggen, Chen and Chen ("End-to-end timing analysis of
sporadic cause-effect chains in distributed systems", TECS 2019) bound
the maximum data age of a chain regardless of the scheduling algorithm,
assuming only that every job meets ``R(tau) <= T(tau)``.  The paper
under reproduction notes (Section III) that those results "can be
directly applied to compute ``B(pi)`` and ``W(pi)`` with a slight
modification", and then improves on them by exploiting non-preemptive
scheduling (our :mod:`repro.chains.backward`).

This module provides the baseline:

* ``wcbt_upper_agnostic`` — per hop, the consumer may read data as old
  as one producer period plus the producer's response time:
  ``W_duerr(pi) = sum_{i=1}^{|pi|-1} (T(pi^i) + R(pi^i))``.  This equals
  Lemma 4 with every hop treated as the "different units" case, i.e.
  it never benefits from same-unit priority relations.
* ``bcbt_lower_agnostic`` — without scheduler knowledge, the only safe
  lower bound on the backward time is ``sum B(pi^i) - R(pi^{|pi|})``
  exactly as in Lemma 5 (its proof does not use non-preemption), but a
  deliberately weaker variant ``bcbt_lower_trivial`` (= the no-finish-
  order-information bound ``-R(pi^{|pi|})``) is also provided for
  ablation studies of how much BCBT precision matters.

The ablation benchmark ``benchmarks/test_bench_ablation_backward.py``
quantifies the gap between these baselines and the paper's bounds.
"""

from __future__ import annotations

from repro.model.chain import Chain
from repro.model.system import System
from repro.units import Time


def wcbt_upper_agnostic(chain: Chain, system: System) -> Time:
    """Scheduling-agnostic WCBT bound: every hop costs ``T + R``."""
    chain.validate(system.graph)
    if len(chain) == 1:
        return 0
    return sum(
        system.T(producer) + system.R(producer)
        for producer, _consumer in chain.edges()
    )


def bcbt_lower_agnostic(chain: Chain, system: System) -> Time:
    """Scheduling-agnostic BCBT bound (Lemma 5 needs no non-preemption)."""
    chain.validate(system.graph)
    if len(chain) == 1:
        return 0
    return sum(system.B(name) for name in chain) - system.R(chain.tail)


def bcbt_lower_trivial(chain: Chain, system: System) -> Time:
    """Deliberately weak BCBT bound used in ablations.

    Ignores all execution-time information: the backward time can only
    be shown to exceed ``-R(tail)`` (the tail job finishes within its
    response time of its release, and its source cannot be released
    after the tail's finish).
    """
    chain.validate(system.graph)
    if len(chain) == 1:
        return 0
    return -system.R(chain.tail)

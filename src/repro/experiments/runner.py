"""High-level experiment runner used by the CLI and the benchmarks."""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.config import (
    DEFAULT_AB,
    DEFAULT_CD,
    PAPER_AB,
    PAPER_CD,
    SMOKE_AB,
    SMOKE_CD,
    Fig6ABConfig,
    Fig6CDConfig,
)
from repro.experiments.fig6 import (
    PointAB,
    PointCD,
    run_fig6_ab_timed,
    run_fig6_cd_timed,
)
from repro.experiments.reporting import (
    check_shapes_ab,
    check_shapes_cd,
    csv_ab,
    csv_cd,
    render_table_ab,
    render_table_cd,
)

_PRESETS_AB = {"paper": PAPER_AB, "default": DEFAULT_AB, "smoke": SMOKE_AB}
_PRESETS_CD = {"paper": PAPER_CD, "default": DEFAULT_CD, "smoke": SMOKE_CD}


def preset_ab(name: str) -> Fig6ABConfig:
    """Look up an (a)/(b) preset by name."""
    try:
        return _PRESETS_AB[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(_PRESETS_AB)}"
        ) from None


def preset_cd(name: str) -> Fig6CDConfig:
    """Look up a (c)/(d) preset by name."""
    try:
        return _PRESETS_CD[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(_PRESETS_CD)}"
        ) from None


def timing_path(out_csv: Path) -> Path:
    """The timing-report path written alongside a CSV."""
    return out_csv.with_suffix(".timing.json")


class _LiveLine:
    """A single self-overwriting progress/utilization line.

    Fed from the campaign's live :class:`~repro.parallel.engine.MapStats`
    after every completed chunk; only attached when the output stream is
    a terminal, so piped/CI logs never fill with carriage returns.
    """

    def __init__(self, tag: str, stream) -> None:
        self._tag = tag
        self._stream = stream
        self._dirty = False

    def __call__(self, stats) -> None:
        self._stream.write(
            f"\r[{self._tag}] {stats.completed}/{stats.n_items} graphs, "
            f"{stats.utilization:.0%} busy, "
            f"chunks {stats.chunk_min}-{stats.chunk_max}"
        )
        self._stream.flush()
        self._dirty = True

    def finish(self) -> None:
        if self._dirty:
            self._stream.write("\n")
            self._stream.flush()
            self._dirty = False


def _live_line(tag: str, stream, enabled: bool) -> Optional[_LiveLine]:
    if enabled and getattr(stream, "isatty", lambda: False)():
        return _LiveLine(tag, stream)
    return None


class ClusterLiveLine:
    """Self-overwriting cluster status line (the ``--progress`` view).

    Fed a :class:`~repro.parallel.cluster.ClusterStatus` snapshot after
    every coordinator poll; TTY-gated exactly like :class:`_LiveLine`
    so piped/CI logs never fill with carriage returns.
    """

    def __init__(self, tag: str, stream) -> None:
        self._tag = tag
        self._stream = stream
        self._dirty = False

    def __call__(self, status) -> None:
        deaths = f", {status.deaths} death(s)" if status.deaths else ""
        failed = f", {status.failed} failed" if status.failed else ""
        self._stream.write(
            f"\r[{self._tag}] shards {status.done}/{status.shard_count} done "
            f"({status.running} running, {status.pending} pending{failed}), "
            f"{status.merged_records}/{status.expected_records} graphs, "
            f"{status.rows_released} row(s){deaths}"
        )
        self._stream.flush()
        self._dirty = True

    def finish(self) -> None:
        if self._dirty:
            self._stream.write("\n")
            self._stream.flush()
            self._dirty = False


def cluster_live_line(tag: str, stream, enabled: bool) -> Optional[ClusterLiveLine]:
    if enabled and getattr(stream, "isatty", lambda: False)():
        return ClusterLiveLine(tag, stream)
    return None


def format_cluster_report(report) -> List[str]:
    """Render a :class:`~repro.parallel.cluster.ClusterReport` as lines."""
    lines = [report.summary()]
    for shard in report.shards:
        note = ""
        if shard.deaths:
            note = f", {shard.deaths} death(s), {shard.re_issues} re-issue(s)"
        lines.append(
            f"shard {shard.index}: {shard.status}, "
            f"{shard.records}/{shard.owned} graph(s), "
            f"{shard.attempts} attempt(s), {shard.wall_s:.2f}s{note}"
        )
    coverage = report.coverage
    if not report.complete and coverage:
        missing = coverage.get("missing_ordinals", [])
        preview = ", ".join(str(o) for o in missing[:10])
        if len(missing) > 10:
            preview += f", ... ({len(missing) - 10} more)"
        lines.append(
            f"coverage: {coverage.get('merged_records', 0)}/"
            f"{coverage.get('expected_records', 0)} graph(s) merged; "
            f"missing ordinal(s) {preview}"
        )
        for x, point in coverage.get("points", {}).items():
            if point["merged"] < point["expected"]:
                lines.append(
                    f"  x={x}: partial row over {point['merged']}/"
                    f"{point['expected']} graph(s)"
                )
    return lines


def _write_outputs(
    tag: str, rows, csv_text: str, timing, out_csv: Optional[Path], stream
) -> None:
    if out_csv is None:
        return
    out_csv.parent.mkdir(parents=True, exist_ok=True)
    out_csv.write_text(csv_text)
    print(f"[{tag}] wrote {out_csv}", file=stream)
    report = timing_path(out_csv)
    report.write_text(json.dumps(timing.to_dict(), indent=2) + "\n")
    print(f"[{tag}] wrote {report}", file=stream)


def _point_timing_lines(timing) -> List[str]:
    lines = []
    for point in timing.points:
        if point.resumed:
            lines.append(f"x={point.x}: resumed from checkpoint")
            continue
        lines.append(
            f"x={point.x}: {point.wall_s:.2f}s wall, "
            f"{point.utilization:.0%} busy "
            f"(gen {point.generate_s:.2f}s / ana {point.analyze_s:.2f}s / "
            f"sim {point.simulate_s:.2f}s, {point.graphs} graphs)"
        )
    return lines


def run_ab(
    config: Fig6ABConfig,
    *,
    out_csv: Optional[Path] = None,
    stream=None,
    verbose: bool = True,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    show_timing: bool = False,
) -> List[PointAB]:
    """Run Fig. 6 (a)/(b), print the table, optionally save CSV.

    ``jobs`` fans per-graph work across worker processes (rows are
    identical for any value); ``checkpoint`` enables per-point
    resume; ``show_timing`` prints the per-point stage/utilization
    breakdown that is always saved to ``<csv>.timing.json``.
    """
    stream = stream if stream is not None else sys.stdout
    progress = (lambda msg: print(f"  {msg}", file=stream)) if verbose else None
    live = _live_line("fig6ab", stream, show_timing)
    rows, timing = run_fig6_ab_timed(
        config,
        progress=progress,
        jobs=jobs,
        checkpoint=checkpoint,
        heartbeat=live,
    )
    if live is not None:
        live.finish()
    print(render_table_ab(rows), file=stream)
    print(f"[fig6ab] {len(rows)} points in {timing.wall_s:.1f}s", file=stream)
    if show_timing:
        for line in _point_timing_lines(timing):
            print(f"  {line}", file=stream)
        print(f"  {timing.summary()}", file=stream)
    violations = check_shapes_ab(rows)
    for violation in violations:
        print(f"[fig6ab] SHAPE VIOLATION: {violation}", file=stream)
    _write_outputs("fig6ab", rows, csv_ab(rows), timing, out_csv, stream)
    return rows


def run_cd(
    config: Fig6CDConfig,
    *,
    out_csv: Optional[Path] = None,
    stream=None,
    verbose: bool = True,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    show_timing: bool = False,
) -> List[PointCD]:
    """Run Fig. 6 (c)/(d), print the table, optionally save CSV."""
    stream = stream if stream is not None else sys.stdout
    progress = (lambda msg: print(f"  {msg}", file=stream)) if verbose else None
    live = _live_line("fig6cd", stream, show_timing)
    rows, timing = run_fig6_cd_timed(
        config,
        progress=progress,
        jobs=jobs,
        checkpoint=checkpoint,
        heartbeat=live,
    )
    if live is not None:
        live.finish()
    print(render_table_cd(rows), file=stream)
    print(f"[fig6cd] {len(rows)} points in {timing.wall_s:.1f}s", file=stream)
    if show_timing:
        for line in _point_timing_lines(timing):
            print(f"  {line}", file=stream)
        print(f"  {timing.summary()}", file=stream)
    violations = check_shapes_cd(rows)
    for violation in violations:
        print(f"[fig6cd] SHAPE VIOLATION: {violation}", file=stream)
    _write_outputs("fig6cd", rows, csv_cd(rows), timing, out_csv, stream)
    return rows

"""High-level experiment runner used by the CLI and the benchmarks."""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.config import (
    DEFAULT_AB,
    DEFAULT_CD,
    PAPER_AB,
    PAPER_CD,
    SMOKE_AB,
    SMOKE_CD,
    Fig6ABConfig,
    Fig6CDConfig,
)
from repro.experiments.fig6 import PointAB, PointCD, run_fig6_ab, run_fig6_cd
from repro.experiments.reporting import (
    check_shapes_ab,
    check_shapes_cd,
    csv_ab,
    csv_cd,
    render_table_ab,
    render_table_cd,
)

_PRESETS_AB = {"paper": PAPER_AB, "default": DEFAULT_AB, "smoke": SMOKE_AB}
_PRESETS_CD = {"paper": PAPER_CD, "default": DEFAULT_CD, "smoke": SMOKE_CD}


def preset_ab(name: str) -> Fig6ABConfig:
    """Look up an (a)/(b) preset by name."""
    try:
        return _PRESETS_AB[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(_PRESETS_AB)}"
        ) from None


def preset_cd(name: str) -> Fig6CDConfig:
    """Look up a (c)/(d) preset by name."""
    try:
        return _PRESETS_CD[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(_PRESETS_CD)}"
        ) from None


def run_ab(
    config: Fig6ABConfig,
    *,
    out_csv: Optional[Path] = None,
    stream=None,
    verbose: bool = True,
) -> List[PointAB]:
    """Run Fig. 6 (a)/(b), print the table, optionally save CSV."""
    stream = stream if stream is not None else sys.stdout
    progress = (lambda msg: print(f"  {msg}", file=stream)) if verbose else None
    started = time.perf_counter()
    rows = run_fig6_ab(config, progress=progress)
    elapsed = time.perf_counter() - started
    print(render_table_ab(rows), file=stream)
    print(f"[fig6ab] {len(rows)} points in {elapsed:.1f}s", file=stream)
    violations = check_shapes_ab(rows)
    for violation in violations:
        print(f"[fig6ab] SHAPE VIOLATION: {violation}", file=stream)
    if out_csv is not None:
        out_csv.parent.mkdir(parents=True, exist_ok=True)
        out_csv.write_text(csv_ab(rows))
        print(f"[fig6ab] wrote {out_csv}", file=stream)
    return rows


def run_cd(
    config: Fig6CDConfig,
    *,
    out_csv: Optional[Path] = None,
    stream=None,
    verbose: bool = True,
) -> List[PointCD]:
    """Run Fig. 6 (c)/(d), print the table, optionally save CSV."""
    stream = stream if stream is not None else sys.stdout
    progress = (lambda msg: print(f"  {msg}", file=stream)) if verbose else None
    started = time.perf_counter()
    rows = run_fig6_cd(config, progress=progress)
    elapsed = time.perf_counter() - started
    print(render_table_cd(rows), file=stream)
    print(f"[fig6cd] {len(rows)} points in {elapsed:.1f}s", file=stream)
    violations = check_shapes_cd(rows)
    for violation in violations:
        print(f"[fig6cd] SHAPE VIOLATION: {violation}", file=stream)
    if out_csv is not None:
        out_csv.parent.mkdir(parents=True, exist_ok=True)
        out_csv.write_text(csv_cd(rows))
        print(f"[fig6cd] wrote {out_csv}", file=stream)
    return rows

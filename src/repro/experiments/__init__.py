"""Evaluation harness reproducing the paper's Fig. 6."""

from repro.experiments.config import (
    DEFAULT_AB,
    DEFAULT_CD,
    PAPER_AB,
    PAPER_CD,
    SMOKE_AB,
    SMOKE_CD,
    Fig6ABConfig,
    Fig6CDConfig,
)
from repro.experiments.fig6 import PointAB, PointCD, run_fig6_ab, run_fig6_cd
from repro.experiments.reporting import (
    check_shapes_ab,
    check_shapes_cd,
    csv_ab,
    csv_cd,
    render_table_ab,
    render_table_cd,
)
from repro.experiments.runner import preset_ab, preset_cd, run_ab, run_cd
from repro.experiments.stats import (
    RunningStats,
    Summary,
    paired_improvement,
    summarize,
)

__all__ = [
    "DEFAULT_AB",
    "DEFAULT_CD",
    "PAPER_AB",
    "PAPER_CD",
    "SMOKE_AB",
    "SMOKE_CD",
    "Fig6ABConfig",
    "Fig6CDConfig",
    "PointAB",
    "PointCD",
    "run_fig6_ab",
    "run_fig6_cd",
    "check_shapes_ab",
    "check_shapes_cd",
    "csv_ab",
    "csv_cd",
    "render_table_ab",
    "render_table_cd",
    "preset_ab",
    "preset_cd",
    "run_ab",
    "run_cd",
    "RunningStats",
    "Summary",
    "paired_improvement",
    "summarize",
]

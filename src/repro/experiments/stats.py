"""Replication statistics for experiment series.

The Fig. 6 harness averages per-graph results; when comparing runs (or
judging whether an ablation's improvement is real) the dispersion
matters too.  This module provides the small, dependency-free pieces:

* :class:`RunningStats` — Welford's online mean/variance;
* :func:`summarize` — mean, sample standard deviation, and a normal-
  approximation confidence half-width for a sample;
* :func:`paired_improvement` — mean and dispersion of per-item paired
  differences (e.g. ``Sim - Sim-B`` per graph), the right view for
  "does the optimization help" questions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


class RunningStats:
    """Welford online accumulator for mean and variance."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one value into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Iterable[float]) -> None:
        """Fold several values into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Running arithmetic mean."""
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (Bessel-corrected); 0 for fewer than 2 points."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return 0.0
        return self.std / math.sqrt(self.count)


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation, and a 95% CI half-width."""

    count: int
    mean: float
    std: float
    ci95: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.ci95:.3f} (n={self.count})"


#: z-value of the two-sided 95% normal interval.
_Z95 = 1.959963984540054


def summarize(values: Sequence[float]) -> Summary:
    """Mean / std / 95% half-width of a sample (normal approximation)."""
    stats = RunningStats()
    stats.extend(values)
    return Summary(
        count=stats.count,
        mean=stats.mean,
        std=stats.std,
        ci95=_Z95 * stats.stderr,
    )


def paired_improvement(
    baseline: Sequence[float], treated: Sequence[float]
) -> Summary:
    """Summary of per-item differences ``baseline[i] - treated[i]``.

    Positive means the treatment reduced the metric.  Raises on length
    mismatch — paired statistics are meaningless otherwise.
    """
    if len(baseline) != len(treated):
        raise ValueError(
            f"paired samples differ in length: {len(baseline)} vs {len(treated)}"
        )
    return summarize([b - t for b, t in zip(baseline, treated)])

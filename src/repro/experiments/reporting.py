"""Rendering and persistence of experiment results.

Text tables mirror the series of the paper's figures (one row per X
value, one column per series); CSV output feeds external plotting.
``check_shapes_*`` encode the qualitative claims of Section V that a
successful reproduction must exhibit — the benchmark suite asserts
them.
"""

from __future__ import annotations

import csv
import io
from typing import List, Sequence

from repro.experiments.fig6 import PointAB, PointCD


def render_table_ab(rows: Sequence[PointAB]) -> str:
    """Fig. 6 (a) + (b) as one aligned text table."""
    header = (
        f"{'n_tasks':>8} {'Sim(ms)':>10} {'P-diff(ms)':>11} "
        f"{'S-diff(ms)':>11} {'P-ratio':>8} {'S-ratio':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.n_tasks:>8} {row.sim_ms:>10.2f} {row.p_diff_ms:>11.2f} "
            f"{row.s_diff_ms:>11.2f} {row.p_ratio:>8.2f} {row.s_ratio:>8.2f}"
        )
    return "\n".join(lines)


def render_table_cd(rows: Sequence[PointCD]) -> str:
    """Fig. 6 (c) + (d) as one aligned text table."""
    header = (
        f"{'k/chain':>8} {'Sim(ms)':>10} {'S-diff(ms)':>11} "
        f"{'Sim-B(ms)':>10} {'S-diff-B(ms)':>13} {'S-ratio':>8} {'S-B-ratio':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.tasks_per_chain:>8} {row.sim_ms:>10.2f} "
            f"{row.s_diff_ms:>11.2f} {row.sim_b_ms:>10.2f} "
            f"{row.s_diff_b_ms:>13.2f} {row.s_ratio:>8.2f} {row.s_b_ratio:>9.2f}"
        )
    return "\n".join(lines)


def csv_ab(rows: Sequence[PointAB]) -> str:
    """Fig. 6 (a)/(b) rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "n_tasks",
            "sim_ms",
            "p_diff_ms",
            "s_diff_ms",
            "p_ratio",
            "s_ratio",
            "sim_std_ms",
            "p_diff_std_ms",
            "s_diff_std_ms",
        ]
    )
    for row in rows:
        writer.writerow(
            [
                row.n_tasks,
                f"{row.sim_ms:.6f}",
                f"{row.p_diff_ms:.6f}",
                f"{row.s_diff_ms:.6f}",
                f"{row.p_ratio:.6f}",
                f"{row.s_ratio:.6f}",
                f"{row.sim_std_ms:.6f}",
                f"{row.p_diff_std_ms:.6f}",
                f"{row.s_diff_std_ms:.6f}",
            ]
        )
    return buffer.getvalue()


def csv_cd(rows: Sequence[PointCD]) -> str:
    """Fig. 6 (c)/(d) rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "tasks_per_chain",
            "sim_ms",
            "s_diff_ms",
            "sim_b_ms",
            "s_diff_b_ms",
            "s_ratio",
            "s_b_ratio",
            "sim_std_ms",
            "s_diff_std_ms",
            "sim_b_std_ms",
            "s_diff_b_std_ms",
        ]
    )
    for row in rows:
        writer.writerow(
            [
                row.tasks_per_chain,
                f"{row.sim_ms:.6f}",
                f"{row.s_diff_ms:.6f}",
                f"{row.sim_b_ms:.6f}",
                f"{row.s_diff_b_ms:.6f}",
                f"{row.s_ratio:.6f}",
                f"{row.s_b_ratio:.6f}",
                f"{row.sim_std_ms:.6f}",
                f"{row.s_diff_std_ms:.6f}",
                f"{row.sim_b_std_ms:.6f}",
                f"{row.s_diff_b_std_ms:.6f}",
            ]
        )
    return buffer.getvalue()


def check_shapes_ab(rows: Sequence[PointAB]) -> List[str]:
    """Qualitative claims of Fig. 6 (a)/(b); returns violations.

    * soundness: Sim <= S-diff and Sim <= P-diff at every point;
    * dominance (aggregate): S-diff <= P-diff at every point.
    """
    violations: List[str] = []
    tolerance = 1e-9
    for row in rows:
        if row.sim_ms > row.s_diff_ms + tolerance:
            violations.append(
                f"n={row.n_tasks}: Sim {row.sim_ms:.3f} exceeds "
                f"S-diff {row.s_diff_ms:.3f}"
            )
        if row.sim_ms > row.p_diff_ms + tolerance:
            violations.append(
                f"n={row.n_tasks}: Sim {row.sim_ms:.3f} exceeds "
                f"P-diff {row.p_diff_ms:.3f}"
            )
        if row.s_diff_ms > row.p_diff_ms + tolerance:
            violations.append(
                f"n={row.n_tasks}: S-diff {row.s_diff_ms:.3f} exceeds "
                f"P-diff {row.p_diff_ms:.3f}"
            )
    return violations


def check_shapes_cd(rows: Sequence[PointCD]) -> List[str]:
    """Qualitative claims of Fig. 6 (c)/(d); returns violations.

    * soundness: Sim <= S-diff and Sim-B <= S-diff-B at every point;
    * the optimization never hurts the bound: S-diff-B <= S-diff.
    """
    violations: List[str] = []
    tolerance = 1e-9
    for row in rows:
        if row.sim_ms > row.s_diff_ms + tolerance:
            violations.append(
                f"k={row.tasks_per_chain}: Sim {row.sim_ms:.3f} exceeds "
                f"S-diff {row.s_diff_ms:.3f}"
            )
        if row.sim_b_ms > row.s_diff_b_ms + tolerance:
            violations.append(
                f"k={row.tasks_per_chain}: Sim-B {row.sim_b_ms:.3f} exceeds "
                f"S-diff-B {row.s_diff_b_ms:.3f}"
            )
        if row.s_diff_b_ms > row.s_diff_ms + tolerance:
            violations.append(
                f"k={row.tasks_per_chain}: S-diff-B {row.s_diff_b_ms:.3f} "
                f"exceeds S-diff {row.s_diff_ms:.3f}"
            )
    return violations

"""Configurations for the Fig. 6 evaluation harness.

The paper's full-fidelity setup (``PAPER_*``) simulates each graph ten
times with random offsets for ten simulated minutes, ten graphs per
point, with the number of tasks sweeping [5, 35] (a/b) and the tasks
per chain sweeping [5, 30] (c/d).  That is hours of pure-Python event
simulation, so the default configurations (``DEFAULT_*``) scale the
horizon and the replication down while keeping every qualitative shape
(see EXPERIMENTS.md for both); ``SMOKE_*`` are the few-second variants
run inside the test and benchmark suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.gen.scenario import ScenarioConfig
from repro.units import Time, seconds


@dataclass(frozen=True)
class Fig6ABConfig:
    """Configuration of the Fig. 6 (a)/(b) sweep: random DAGs."""

    x_values: Tuple[int, ...]
    graphs_per_point: int = 10
    sims_per_graph: int = 10
    sim_duration: Time = seconds(600)
    warmup: Time = seconds(1)
    seed: int = 2023
    policy: str = "uniform"
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    #: Communication semantics of analysis *and* simulation:
    #: ``"implicit"`` (the paper's model, the default) or ``"let"``
    #: (bounds via :func:`repro.let.backward_bounds_let`, LET replay).
    semantics: str = "implicit"

    def scaled(self, **overrides) -> "Fig6ABConfig":
        """A copy with selected fields overridden."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class Fig6CDConfig:
    """Configuration of the Fig. 6 (c)/(d) sweep: merged chain pairs."""

    x_values: Tuple[int, ...]
    graphs_per_point: int = 10
    sims_per_graph: int = 10
    sim_duration: Time = seconds(600)
    warmup: Time = seconds(1)
    seed: int = 2023
    policy: str = "uniform"
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    #: Communication semantics; see :class:`Fig6ABConfig.semantics`.
    semantics: str = "implicit"

    def scaled(self, **overrides) -> "Fig6CDConfig":
        return replace(self, **overrides)


#: Full-fidelity configuration matching the paper's description.
PAPER_AB = Fig6ABConfig(x_values=tuple(range(5, 36)))
PAPER_CD = Fig6CDConfig(x_values=tuple(range(5, 31)))

#: Laptop-scale defaults: same sweep, but many *short* runs instead of
#: few long ones.  WATERS periods share a 200 ms hyperperiod, so with
#: microsecond execution jitter a run's behaviour repeats after a few
#: hyperperiods; the observed disparity is determined almost entirely
#: by the random offset draw.  Many draws with a horizon of a few
#: seconds therefore dominate the paper's 10-minute horizon at a small
#: fraction of the cost (see EXPERIMENTS.md).
DEFAULT_AB = Fig6ABConfig(
    x_values=tuple(range(5, 36, 5)),
    graphs_per_point=5,
    sims_per_graph=20,
    sim_duration=seconds(6),
    warmup=seconds(3),
)
DEFAULT_CD = Fig6CDConfig(
    x_values=tuple(range(5, 31, 5)),
    graphs_per_point=5,
    sims_per_graph=20,
    sim_duration=seconds(8),
    warmup=seconds(3),
)

#: Seconds-scale variants for tests and pytest-benchmark runs.
SMOKE_AB = Fig6ABConfig(
    x_values=(5, 15, 25),
    graphs_per_point=2,
    sims_per_graph=4,
    sim_duration=seconds(4),
    warmup=seconds(2),
)
SMOKE_CD = Fig6CDConfig(
    x_values=(5, 15, 25),
    graphs_per_point=2,
    sims_per_graph=4,
    sim_duration=seconds(5),
    warmup=seconds(2),
)

"""The Fig. 6 evaluation harness.

Regenerates the four panels of the paper's Fig. 6:

* **(a)** absolute worst-case time disparity over the number of tasks
  in random single-sink DAGs: simulated lower bound (``Sim``) versus
  Theorem 1 (``P-diff``) and Theorem 2 (``S-diff``);
* **(b)** the incremental ratio ``(bound - Sim) / Sim`` of both bounds;
* **(c)** absolute disparity over the tasks-per-chain of two chains
  merged at one sink: ``Sim``/``S-diff`` and their buffered
  counterparts ``Sim-B``/``S-diff-B`` after Algorithm 1;
* **(d)** the incremental ratios of the unbuffered and buffered pairs.

Per point on the X axis the harness generates ``graphs_per_point``
scenarios; each is analyzed once and simulated ``sims_per_graph`` times
with fresh random offsets (as in the paper), taking the per-graph
maximum observed disparity and averaging across graphs.

The unit of work is one *graph*: :func:`run_graph_ab` and
:func:`run_graph_cd` are pure functions of ``(config, x, seed)``, and
every graph's seed is derived upfront from ``config.seed`` (one parent
draw each — see :func:`repro.gen.scenario.derive_seed`).  Results are
therefore independent of execution order, which is what lets
:mod:`repro.parallel` fan the graphs across worker processes and still
produce byte-identical CSVs to a serial run.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.api import AnalysisSession
from repro.buffers.sizing import design_buffer_pair
from repro.core.pairwise import disparity_bound_forkjoin
from repro.experiments.config import Fig6ABConfig, Fig6CDConfig
from repro.gen.scenario import (
    derive_seed,
    generate_merged_pair_scenario,
    generate_random_scenario,
)
from repro.model.system import System
from repro.parallel.campaign import CampaignPart, register_part
from repro.units import Time, to_ms


@dataclass(frozen=True)
class PointAB:
    """One X-axis point of Fig. 6 (a)/(b), averaged over graphs (ms).

    The ``*_std_ms`` fields carry the across-graph sample standard
    deviation (0 when a single graph was measured) — they feed the CSV
    output so replication dispersion is never lost.
    """

    n_tasks: int
    sim_ms: float
    p_diff_ms: float
    s_diff_ms: float
    sim_std_ms: float = 0.0
    p_diff_std_ms: float = 0.0
    s_diff_std_ms: float = 0.0

    @property
    def p_ratio(self) -> float:
        """Incremental ratio of P-diff over Sim (Fig. 6(b))."""
        return _ratio(self.p_diff_ms, self.sim_ms)

    @property
    def s_ratio(self) -> float:
        """Incremental ratio of S-diff over Sim (Fig. 6(b))."""
        return _ratio(self.s_diff_ms, self.sim_ms)


@dataclass(frozen=True)
class PointCD:
    """One X-axis point of Fig. 6 (c)/(d), averaged over graphs (ms)."""

    tasks_per_chain: int
    sim_ms: float
    s_diff_ms: float
    sim_b_ms: float
    s_diff_b_ms: float
    sim_std_ms: float = 0.0
    s_diff_std_ms: float = 0.0
    sim_b_std_ms: float = 0.0
    s_diff_b_std_ms: float = 0.0

    @property
    def s_ratio(self) -> float:
        """Incremental ratio of S-diff over Sim (Fig. 6(d))."""
        return _ratio(self.s_diff_ms, self.sim_ms)

    @property
    def s_b_ratio(self) -> float:
        """Incremental ratio of S-diff-B over Sim-B (Fig. 6(d))."""
        return _ratio(self.s_diff_b_ms, self.sim_b_ms)


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock seconds one graph spent in each pipeline stage."""

    generate_s: float
    analyze_s: float
    simulate_s: float

    @property
    def total_s(self) -> float:
        return self.generate_s + self.analyze_s + self.simulate_s

    def __add__(self, other: "StageTiming") -> "StageTiming":
        return StageTiming(
            generate_s=self.generate_s + other.generate_s,
            analyze_s=self.analyze_s + other.analyze_s,
            simulate_s=self.simulate_s + other.simulate_s,
        )


ZERO_TIMING = StageTiming(0.0, 0.0, 0.0)


@dataclass(frozen=True)
class GraphResultAB:
    """Measurements of one random graph of the (a)/(b) sweep."""

    n_tasks: int
    graph_index: int
    seed: int
    sim_ms: float
    p_diff_ms: float
    s_diff_ms: float
    timing: StageTiming


@dataclass(frozen=True)
class GraphResultCD:
    """Measurements of one merged-pair graph of the (c)/(d) sweep."""

    tasks_per_chain: int
    graph_index: int
    seed: int
    sim_ms: float
    s_diff_ms: float
    sim_b_ms: float
    s_diff_b_ms: float
    timing: StageTiming


@dataclass(frozen=True)
class GraphTask:
    """One schedulable unit of Fig. 6 work: (X value, replica, seed)."""

    x: int
    graph_index: int
    seed: int


def _ratio(bound_ms: float, sim_ms: float) -> float:
    if sim_ms <= 0.0:
        return 0.0
    return (bound_ms - sim_ms) / sim_ms


def graph_tasks(
    config, x_values: Optional[Sequence[int]] = None
) -> List[GraphTask]:
    """Derive the full task list of a sweep, with per-graph child seeds.

    All seeds are drawn upfront from a single root generator in a fixed
    order (X value major, replica minor), so the seed of graph ``g`` at
    point ``x`` never depends on which other graphs ran, or in what
    order — the foundation of serial/parallel determinism.
    """
    root = random.Random(config.seed)
    tasks: List[GraphTask] = []
    for x in config.x_values:
        for graph_index in range(config.graphs_per_point):
            seed = derive_seed(root)
            if x_values is None or x in x_values:
                tasks.append(GraphTask(x=x, graph_index=graph_index, seed=seed))
    return tasks


def _session_for(system: System, semantics: str) -> AnalysisSession:
    """A session matching the sweep's semantics.

    ``"implicit"`` builds the plain session the paper's evaluation uses;
    ``"let"`` pins the LET pair — :func:`repro.let.backward_bounds_let`
    for every analytical bound plus LET data-flow replay for every
    simulation — so one config field switches the whole sweep.
    """
    if semantics == "let":
        from repro.let import backward_bounds_let

        return AnalysisSession(
            system, bounds_strategy=backward_bounds_let, semantics="let"
        )
    return AnalysisSession(system)


def _max_observed_disparity(
    session: AnalysisSession,
    task: str,
    *,
    sims: int,
    duration: Time,
    warmup: Time,
    policy_name: str,
    rng: random.Random,
) -> Time:
    """Max observed disparity over ``sims`` runs with random offsets."""
    return session.observed_disparity(
        task,
        sims=sims,
        duration=duration,
        warmup=warmup,
        rng=rng,
        policy=policy_name,
    )


def _buffer_fill_warmup(system: System, base_warmup: Time, duration: Time) -> Time:
    """Warm-up long enough for every FIFO to fill (Lemma 6's premise)."""
    fill = 0
    for channel in system.graph.channels:
        if channel.capacity > 1:
            fill = max(fill, channel.capacity * system.T(channel.src))
    warmup = base_warmup + 2 * fill
    # Keep at least half the horizon for measurement.
    return min(warmup, duration // 2)


def run_graph_ab(
    config: Fig6ABConfig, task: GraphTask
) -> GraphResultAB:
    """Generate, analyze and simulate one (a)/(b) graph — pure in
    ``(config, task)``, safe to run in any process and any order."""
    rng = random.Random(task.seed)
    t0 = time.perf_counter()
    scenario = generate_random_scenario(task.x, rng, config.scenario)
    t1 = time.perf_counter()
    session = _session_for(scenario.system, config.semantics)
    p_diff = to_ms(session.disparity(scenario.sink, method="independent"))
    s_diff = to_ms(session.disparity(scenario.sink, method="forkjoin"))
    t2 = time.perf_counter()
    sim = to_ms(
        _max_observed_disparity(
            session,
            scenario.sink,
            sims=config.sims_per_graph,
            duration=config.sim_duration,
            warmup=config.warmup,
            policy_name=config.policy,
            rng=rng,
        )
    )
    t3 = time.perf_counter()
    return GraphResultAB(
        n_tasks=task.x,
        graph_index=task.graph_index,
        seed=task.seed,
        sim_ms=sim,
        p_diff_ms=p_diff,
        s_diff_ms=s_diff,
        timing=StageTiming(
            generate_s=t1 - t0, analyze_s=t2 - t1, simulate_s=t3 - t2
        ),
    )


def run_graph_cd(
    config: Fig6CDConfig, task: GraphTask
) -> GraphResultCD:
    """Generate, analyze and simulate one (c)/(d) graph — pure in
    ``(config, task)``."""
    rng = random.Random(task.seed)
    t0 = time.perf_counter()
    scenario = generate_merged_pair_scenario(task.x, rng, config.scenario)
    t1 = time.perf_counter()
    session = _session_for(scenario.system, config.semantics)
    lam, nu = session.chains(scenario.sink)
    base = disparity_bound_forkjoin(lam, nu, session.cache)
    design = design_buffer_pair(lam, nu, session.cache)
    s_diff = to_ms(base.bound)
    s_diff_b = to_ms(base.bound - design.shift)
    t2 = time.perf_counter()
    sim = to_ms(
        _max_observed_disparity(
            session,
            scenario.sink,
            sims=config.sims_per_graph,
            duration=config.sim_duration,
            warmup=config.warmup,
            policy_name=config.policy,
            rng=rng,
        )
    )
    buffered = _session_for(
        session.system.with_buffer_plan(design.plan), config.semantics
    )
    warmup_b = _buffer_fill_warmup(
        buffered.system, config.warmup, config.sim_duration
    )
    sim_b = to_ms(
        _max_observed_disparity(
            buffered,
            scenario.sink,
            sims=config.sims_per_graph,
            duration=config.sim_duration,
            warmup=warmup_b,
            policy_name=config.policy,
            rng=rng,
        )
    )
    t3 = time.perf_counter()
    return GraphResultCD(
        tasks_per_chain=task.x,
        graph_index=task.graph_index,
        seed=task.seed,
        sim_ms=sim,
        s_diff_ms=s_diff,
        sim_b_ms=sim_b,
        s_diff_b_ms=s_diff_b,
        timing=StageTiming(
            generate_s=t1 - t0, analyze_s=t2 - t1, simulate_s=t3 - t2
        ),
    )


def aggregate_ab(n_tasks: int, results: Sequence[GraphResultAB]) -> PointAB:
    """Fold per-graph results of one X point into its Fig. 6 row.

    ``results`` may arrive in any completion order; they are sorted by
    replica index first so the row never depends on scheduling.
    """
    ordered = sorted(results, key=lambda r: r.graph_index)
    sims = [r.sim_ms for r in ordered]
    p_diffs = [r.p_diff_ms for r in ordered]
    s_diffs = [r.s_diff_ms for r in ordered]
    return PointAB(
        n_tasks=n_tasks,
        sim_ms=_mean(sims),
        p_diff_ms=_mean(p_diffs),
        s_diff_ms=_mean(s_diffs),
        sim_std_ms=_std(sims),
        p_diff_std_ms=_std(p_diffs),
        s_diff_std_ms=_std(s_diffs),
    )


def aggregate_cd(
    tasks_per_chain: int, results: Sequence[GraphResultCD]
) -> PointCD:
    """Fold per-graph results of one X point into its Fig. 6 row."""
    ordered = sorted(results, key=lambda r: r.graph_index)
    sims = [r.sim_ms for r in ordered]
    s_diffs = [r.s_diff_ms for r in ordered]
    sims_b = [r.sim_b_ms for r in ordered]
    s_diffs_b = [r.s_diff_b_ms for r in ordered]
    return PointCD(
        tasks_per_chain=tasks_per_chain,
        sim_ms=_mean(sims),
        s_diff_ms=_mean(s_diffs),
        sim_b_ms=_mean(sims_b),
        s_diff_b_ms=_mean(s_diffs_b),
        sim_std_ms=_std(sims),
        s_diff_std_ms=_std(s_diffs),
        sim_b_std_ms=_std(sims_b),
        s_diff_b_std_ms=_std(s_diffs_b),
    )


def _format_progress_ab(row: PointAB) -> str:
    return (
        f"n={row.n_tasks}: Sim={row.sim_ms:.1f}ms "
        f"P-diff={row.p_diff_ms:.1f}ms S-diff={row.s_diff_ms:.1f}ms"
    )


def _format_progress_cd(row: PointCD) -> str:
    return (
        f"k={row.tasks_per_chain}: Sim={row.sim_ms:.1f} "
        f"S-diff={row.s_diff_ms:.1f} Sim-B={row.sim_b_ms:.1f} "
        f"S-diff-B={row.s_diff_b_ms:.1f} (ms)"
    )


def _decode_result_ab(data: dict) -> GraphResultAB:
    """Rebuild a :class:`GraphResultAB` from its ``asdict`` form.

    Inverse of the JSON round-trip shard files use; floats survive the
    trip bit-for-bit, so merged aggregation reproduces serial bytes.
    """
    data = dict(data)
    data["timing"] = StageTiming(**data["timing"])
    return GraphResultAB(**data)


def _decode_result_cd(data: dict) -> GraphResultCD:
    """Rebuild a :class:`GraphResultCD` from its ``asdict`` form."""
    data = dict(data)
    data["timing"] = StageTiming(**data["timing"])
    return GraphResultCD(**data)


def _metric_sim_ms(result) -> float:
    """The campaign-wide streamed observable: observed disparity (ms)."""
    return result.sim_ms


def _csv_ab(rows: Sequence[PointAB]) -> str:
    from repro.experiments.reporting import csv_ab

    return csv_ab(rows)


def _csv_cd(rows: Sequence[PointCD]) -> str:
    from repro.experiments.reporting import csv_cd

    return csv_cd(rows)


#: The Fig. 6 sweeps as registered campaign parts — what lets the
#: generic engine (:mod:`repro.parallel.campaign`) and the shard tools
#: (:mod:`repro.parallel.shard`) run them by name.
AB_PART = register_part(
    CampaignPart(
        name="ab",
        tasks=graph_tasks,
        run_graph=run_graph_ab,
        aggregate=aggregate_ab,
        row_type=PointAB,
        result_type=GraphResultAB,
        decode_result=_decode_result_ab,
        format_progress=_format_progress_ab,
        to_csv=_csv_ab,
        metric=_metric_sim_ms,
    )
)
CD_PART = register_part(
    CampaignPart(
        name="cd",
        tasks=graph_tasks,
        run_graph=run_graph_cd,
        aggregate=aggregate_cd,
        row_type=PointCD,
        result_type=GraphResultCD,
        decode_result=_decode_result_cd,
        format_progress=_format_progress_cd,
        to_csv=_csv_cd,
        metric=_metric_sim_ms,
    )
)


def run_fig6_ab(
    config: Fig6ABConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> List[PointAB]:
    """Run the Fig. 6 (a)/(b) sweep and return one row per X value.

    ``jobs > 1`` fans the per-graph work across worker processes via
    :mod:`repro.parallel`; seeds are pre-derived per graph, so the rows
    are identical to a serial run.
    """
    rows, _ = run_fig6_ab_timed(config, progress=progress, jobs=jobs)
    return rows


def run_fig6_cd(
    config: Fig6CDConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> List[PointCD]:
    """Run the Fig. 6 (c)/(d) sweep and return one row per X value."""
    rows, _ = run_fig6_cd_timed(config, progress=progress, jobs=jobs)
    return rows


def run_fig6_ab_timed(
    config: Fig6ABConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    checkpoint=None,
    heartbeat=None,
) -> Tuple[List[PointAB], "object"]:
    """:func:`run_fig6_ab` plus the campaign's timing report."""
    from repro.parallel.campaign import run_campaign

    return run_campaign(
        AB_PART,
        config,
        jobs=jobs,
        progress=progress,
        checkpoint=checkpoint,
        heartbeat=heartbeat,
    )


def run_fig6_cd_timed(
    config: Fig6CDConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    checkpoint=None,
    heartbeat=None,
) -> Tuple[List[PointCD], "object"]:
    """:func:`run_fig6_cd` plus the campaign's timing report."""
    from repro.parallel.campaign import run_campaign

    return run_campaign(
        CD_PART,
        config,
        jobs=jobs,
        progress=progress,
        checkpoint=checkpoint,
        heartbeat=heartbeat,
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _std(values: Sequence[float]) -> float:
    from repro.experiments.stats import summarize

    return summarize(values).std

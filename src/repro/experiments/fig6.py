"""The Fig. 6 evaluation harness.

Regenerates the four panels of the paper's Fig. 6:

* **(a)** absolute worst-case time disparity over the number of tasks
  in random single-sink DAGs: simulated lower bound (``Sim``) versus
  Theorem 1 (``P-diff``) and Theorem 2 (``S-diff``);
* **(b)** the incremental ratio ``(bound - Sim) / Sim`` of both bounds;
* **(c)** absolute disparity over the tasks-per-chain of two chains
  merged at one sink: ``Sim``/``S-diff`` and their buffered
  counterparts ``Sim-B``/``S-diff-B`` after Algorithm 1;
* **(d)** the incremental ratios of the unbuffered and buffered pairs.

Per point on the X axis the harness generates ``graphs_per_point``
scenarios; each is analyzed once and simulated ``sims_per_graph`` times
with fresh random offsets (as in the paper), taking the per-graph
maximum observed disparity and averaging across graphs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.buffers.sizing import design_buffer_pair
from repro.chains.backward import BackwardBoundsCache
from repro.core.disparity import disparity_bound
from repro.core.pairwise import disparity_bound_forkjoin
from repro.experiments.config import Fig6ABConfig, Fig6CDConfig
from repro.gen.scenario import (
    generate_merged_pair_scenario,
    generate_random_scenario,
)
from repro.model.chain import enumerate_source_chains
from repro.model.system import System
from repro.sim.engine import randomize_offsets, simulate
from repro.sim.exec_time import named_policy
from repro.sim.metrics import DisparityMonitor
from repro.units import Time, to_ms


@dataclass(frozen=True)
class PointAB:
    """One X-axis point of Fig. 6 (a)/(b), averaged over graphs (ms).

    The ``*_std_ms`` fields carry the across-graph sample standard
    deviation (0 when a single graph was measured) — they feed the CSV
    output so replication dispersion is never lost.
    """

    n_tasks: int
    sim_ms: float
    p_diff_ms: float
    s_diff_ms: float
    sim_std_ms: float = 0.0
    p_diff_std_ms: float = 0.0
    s_diff_std_ms: float = 0.0

    @property
    def p_ratio(self) -> float:
        """Incremental ratio of P-diff over Sim (Fig. 6(b))."""
        return _ratio(self.p_diff_ms, self.sim_ms)

    @property
    def s_ratio(self) -> float:
        """Incremental ratio of S-diff over Sim (Fig. 6(b))."""
        return _ratio(self.s_diff_ms, self.sim_ms)


@dataclass(frozen=True)
class PointCD:
    """One X-axis point of Fig. 6 (c)/(d), averaged over graphs (ms)."""

    tasks_per_chain: int
    sim_ms: float
    s_diff_ms: float
    sim_b_ms: float
    s_diff_b_ms: float
    sim_std_ms: float = 0.0
    s_diff_std_ms: float = 0.0
    sim_b_std_ms: float = 0.0
    s_diff_b_std_ms: float = 0.0

    @property
    def s_ratio(self) -> float:
        """Incremental ratio of S-diff over Sim (Fig. 6(d))."""
        return _ratio(self.s_diff_ms, self.sim_ms)

    @property
    def s_b_ratio(self) -> float:
        """Incremental ratio of S-diff-B over Sim-B (Fig. 6(d))."""
        return _ratio(self.s_diff_b_ms, self.sim_b_ms)


def _ratio(bound_ms: float, sim_ms: float) -> float:
    if sim_ms <= 0.0:
        return 0.0
    return (bound_ms - sim_ms) / sim_ms


def _max_observed_disparity(
    system: System,
    task: str,
    *,
    sims: int,
    duration: Time,
    warmup: Time,
    policy_name: str,
    rng: random.Random,
) -> Time:
    """Max observed disparity over ``sims`` runs with random offsets."""
    policy = named_policy(policy_name)
    worst: Time = 0
    for rep in range(sims):
        offset_graph = randomize_offsets(system.graph, rng)
        # Offsets do not change schedulability; skip re-validation and
        # reuse the cached response times for speed.
        offset_system = System(
            graph=offset_graph, response_times=system.response_times
        )
        monitor = DisparityMonitor([task], warmup=warmup)
        simulate(
            offset_system,
            duration,
            seed=rng.randrange(2**31),
            policy=policy,
            observers=[monitor],
        )
        worst = max(worst, monitor.disparity(task))
    return worst


def _buffer_fill_warmup(system: System, base_warmup: Time, duration: Time) -> Time:
    """Warm-up long enough for every FIFO to fill (Lemma 6's premise)."""
    fill = 0
    for channel in system.graph.channels:
        if channel.capacity > 1:
            fill = max(fill, channel.capacity * system.T(channel.src))
    warmup = base_warmup + 2 * fill
    # Keep at least half the horizon for measurement.
    return min(warmup, duration // 2)


def run_fig6_ab(
    config: Fig6ABConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[PointAB]:
    """Run the Fig. 6 (a)/(b) sweep and return one row per X value."""
    rng = random.Random(config.seed)
    rows: List[PointAB] = []
    for n_tasks in config.x_values:
        sims: List[float] = []
        p_diffs: List[float] = []
        s_diffs: List[float] = []
        for _ in range(config.graphs_per_point):
            scenario = generate_random_scenario(n_tasks, rng, config.scenario)
            cache = BackwardBoundsCache(scenario.system)
            p_diffs.append(
                to_ms(
                    disparity_bound(
                        scenario.system,
                        scenario.sink,
                        method="independent",
                        cache=cache,
                    )
                )
            )
            s_diffs.append(
                to_ms(
                    disparity_bound(
                        scenario.system,
                        scenario.sink,
                        method="forkjoin",
                        cache=cache,
                    )
                )
            )
            sims.append(
                to_ms(
                    _max_observed_disparity(
                        scenario.system,
                        scenario.sink,
                        sims=config.sims_per_graph,
                        duration=config.sim_duration,
                        warmup=config.warmup,
                        policy_name=config.policy,
                        rng=rng,
                    )
                )
            )
        row = PointAB(
            n_tasks=n_tasks,
            sim_ms=_mean(sims),
            p_diff_ms=_mean(p_diffs),
            s_diff_ms=_mean(s_diffs),
            sim_std_ms=_std(sims),
            p_diff_std_ms=_std(p_diffs),
            s_diff_std_ms=_std(s_diffs),
        )
        rows.append(row)
        if progress is not None:
            progress(
                f"n={n_tasks}: Sim={row.sim_ms:.1f}ms "
                f"P-diff={row.p_diff_ms:.1f}ms S-diff={row.s_diff_ms:.1f}ms"
            )
    return rows


def run_fig6_cd(
    config: Fig6CDConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[PointCD]:
    """Run the Fig. 6 (c)/(d) sweep and return one row per X value."""
    rng = random.Random(config.seed)
    rows: List[PointCD] = []
    for tasks_per_chain in config.x_values:
        sims: List[float] = []
        s_diffs: List[float] = []
        sims_b: List[float] = []
        s_diffs_b: List[float] = []
        for _ in range(config.graphs_per_point):
            scenario = generate_merged_pair_scenario(
                tasks_per_chain, rng, config.scenario
            )
            system = scenario.system
            cache = BackwardBoundsCache(system)
            lam, nu = enumerate_source_chains(system.graph, scenario.sink)
            base = disparity_bound_forkjoin(lam, nu, cache)
            design = design_buffer_pair(lam, nu, cache)
            s_diffs.append(to_ms(base.bound))
            s_diffs_b.append(to_ms(base.bound - design.shift))

            sims.append(
                to_ms(
                    _max_observed_disparity(
                        system,
                        scenario.sink,
                        sims=config.sims_per_graph,
                        duration=config.sim_duration,
                        warmup=config.warmup,
                        policy_name=config.policy,
                        rng=rng,
                    )
                )
            )
            buffered = system.with_buffer_plan(design.plan)
            warmup_b = _buffer_fill_warmup(
                buffered, config.warmup, config.sim_duration
            )
            sims_b.append(
                to_ms(
                    _max_observed_disparity(
                        buffered,
                        scenario.sink,
                        sims=config.sims_per_graph,
                        duration=config.sim_duration,
                        warmup=warmup_b,
                        policy_name=config.policy,
                        rng=rng,
                    )
                )
            )
        row = PointCD(
            tasks_per_chain=tasks_per_chain,
            sim_ms=_mean(sims),
            s_diff_ms=_mean(s_diffs),
            sim_b_ms=_mean(sims_b),
            s_diff_b_ms=_mean(s_diffs_b),
            sim_std_ms=_std(sims),
            s_diff_std_ms=_std(s_diffs),
            sim_b_std_ms=_std(sims_b),
            s_diff_b_std_ms=_std(s_diffs_b),
        )
        rows.append(row)
        if progress is not None:
            progress(
                f"k={tasks_per_chain}: Sim={row.sim_ms:.1f} "
                f"S-diff={row.s_diff_ms:.1f} Sim-B={row.sim_b_ms:.1f} "
                f"S-diff-B={row.s_diff_b_ms:.1f} (ms)"
            )
    return rows


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _std(values: Sequence[float]) -> float:
    from repro.experiments.stats import summarize

    return summarize(values).std

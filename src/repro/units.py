"""Time units and integer-time arithmetic.

Everything inside this library uses **integer nanoseconds** as its time
base.  The WATERS 2015 benchmark specifies average execution times in
(fractional) microseconds and periods in milliseconds; converting both to
integer nanoseconds at the boundary keeps every analysis formula — the
floor/ceiling divisions of Theorem 2, the window arithmetic of
Algorithm 1 — exact, with no floating-point comparisons anywhere in the
analysis path.

The public helpers convert *into* nanoseconds (``ms``, ``us``, ``ns``) and
*out of* nanoseconds (``to_ms``, ``to_us``) for reporting.  ``ceil_div``
and ``floor_div`` implement mathematically correct integer division for
possibly-negative numerators, which Python's ``//`` already provides for
floors but not for ceilings.
"""

from __future__ import annotations

from fractions import Fraction

#: Number of nanoseconds per microsecond / millisecond / second.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

Time = int
"""Type alias: a point in time or a duration, in integer nanoseconds."""


def ns(value: float) -> Time:
    """Convert a value expressed in nanoseconds to integer nanoseconds."""
    return round(value)


def us(value: float) -> Time:
    """Convert microseconds to integer nanoseconds."""
    return round(value * NS_PER_US)


def ms(value: float) -> Time:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * NS_PER_MS)


def seconds(value: float) -> Time:
    """Convert seconds to integer nanoseconds."""
    return round(value * NS_PER_S)


def to_us(value: Time) -> float:
    """Convert integer nanoseconds to (float) microseconds for reporting."""
    return value / NS_PER_US


def to_ms(value: Time) -> float:
    """Convert integer nanoseconds to (float) milliseconds for reporting."""
    return value / NS_PER_MS


def to_s(value: Time) -> float:
    """Convert integer nanoseconds to (float) seconds for reporting."""
    return value / NS_PER_S


def floor_div(numerator: int, denominator: int) -> int:
    """Mathematical floor of ``numerator / denominator``.

    Python's ``//`` already floors toward negative infinity, which is the
    mathematically correct behaviour needed by Theorem 2's ``y_j``
    recursion; this wrapper exists for symmetry with :func:`ceil_div` and
    to validate the denominator.
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return numerator // denominator


def ceil_div(numerator: int, denominator: int) -> int:
    """Mathematical ceiling of ``numerator / denominator``.

    Required by Theorem 2's ``x_j`` recursion, where the numerator can be
    negative (best-case backward times may be negative).
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -((-numerator) // denominator)


def exact_ratio(numerator: int, denominator: int) -> Fraction:
    """Exact rational ``numerator / denominator`` (for reporting only)."""
    return Fraction(numerator, denominator)


def lcm(*values: int) -> int:
    """Least common multiple of one or more positive integers.

    Used to compute hyperperiods for simulation horizons and warm-up
    windows.
    """
    if not values:
        raise ValueError("lcm() requires at least one value")
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError(f"lcm() requires positive values, got {value}")
        result = _lcm2(result, value)
    return result


def _lcm2(a: int, b: int) -> int:
    from math import gcd

    return a // gcd(a, b) * b


def format_time(value: Time) -> str:
    """Human-readable rendering of a duration in the most natural unit."""
    magnitude = abs(value)
    if magnitude >= NS_PER_S:
        return f"{value / NS_PER_S:.3f}s"
    if magnitude >= NS_PER_MS:
        return f"{value / NS_PER_MS:.3f}ms"
    if magnitude >= NS_PER_US:
        return f"{value / NS_PER_US:.3f}us"
    return f"{value}ns"

"""Scheduling analysis: response times, priorities, utilization."""

from repro.sched.priority import (
    assign_audsley,
    assign_deadline_monotonic,
    assign_rate_monotonic,
)
from repro.sched.response_time import (
    ResponseTimeTable,
    SchedulabilityError,
    analyze_all,
    blocking_factor,
    higher_priority,
    is_schedulable,
    lower_priority,
    partition_by_unit,
    response_time_np_fp,
    response_time_p_fp,
)
from repro.sched.utilization import (
    max_unit_utilization,
    task_utilization,
    total_utilization,
    unit_utilizations,
    utilization_feasible,
)

__all__ = [
    "assign_audsley",
    "assign_deadline_monotonic",
    "assign_rate_monotonic",
    "ResponseTimeTable",
    "SchedulabilityError",
    "analyze_all",
    "blocking_factor",
    "higher_priority",
    "is_schedulable",
    "lower_priority",
    "partition_by_unit",
    "response_time_np_fp",
    "response_time_p_fp",
    "max_unit_utilization",
    "task_utilization",
    "total_utilization",
    "unit_utilizations",
    "utilization_feasible",
]

"""Utilization accounting and quick schedulability screens.

The experiment generators use these to sanity-check generated systems
before running the (exact) response-time analysis: a unit whose
utilization exceeds 1 can never be schedulable, and the report modules
print per-unit utilization alongside analysis results.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.model.task import Task
from repro.sched.response_time import partition_by_unit


def task_utilization(task: Task) -> float:
    """``W(tau) / T(tau)`` of a single task."""
    return task.wcet / task.period


def unit_utilizations(tasks: Iterable[Task]) -> Dict[str, float]:
    """Total utilization per processing unit (sources excluded)."""
    by_unit = partition_by_unit(tasks)
    return {
        unit: sum(task_utilization(t) for t in group)
        for unit, group in by_unit.items()
    }


def total_utilization(tasks: Iterable[Task]) -> float:
    """Sum of utilizations across all units."""
    return sum(task_utilization(t) for t in tasks if not t.is_instantaneous)


def max_unit_utilization(tasks: Iterable[Task]) -> float:
    """The most loaded unit's utilization (0.0 for an all-source set)."""
    utilizations = unit_utilizations(tasks)
    return max(utilizations.values(), default=0.0)


def utilization_feasible(tasks: Iterable[Task]) -> bool:
    """Necessary condition: no unit over 100% utilized."""
    return max_unit_utilization(tasks) <= 1.0

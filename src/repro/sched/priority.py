"""Priority assignment policies.

The paper's analysis consumes a fixed-priority order per processing
unit (``hp(tau)`` in Lemma 4) but does not prescribe how priorities are
chosen.  For periodic tasks with implicit deadlines, rate-monotonic
ordering is the canonical choice and is the default of the experiment
generators.  Audsley's optimal priority assignment is provided as an
extension — with non-preemptive blocking, RM is not optimal, and OPA can
rescue task sets RM rejects.
"""

from __future__ import annotations

from typing import Dict, List

from repro.model.graph import CauseEffectGraph
from repro.model.task import ModelError, Task
from repro.sched.response_time import (
    SchedulabilityError,
    response_time_np_fp,
)


def assign_rate_monotonic(graph: CauseEffectGraph) -> CauseEffectGraph:
    """Assign RM priorities per processing unit (ties broken by name).

    Smaller period gets a smaller priority number (= higher priority).
    Source tasks receive priorities too (harmless: they never compete
    for the processor), so every task ends up with a total order per
    unit.
    """
    assigned = graph.copy()
    by_unit: Dict[str, List[Task]] = {}
    for task in assigned.tasks:
        if task.ecu is None:
            raise ModelError(f"task {task.name!r} must be mapped before priority assignment")
        by_unit.setdefault(task.ecu, []).append(task)
    for unit_tasks in by_unit.values():
        ordered = sorted(unit_tasks, key=lambda t: (t.period, t.name))
        for level, task in enumerate(ordered):
            assigned.replace_task(task.with_priority(level))
    return assigned


def assign_deadline_monotonic(
    graph: CauseEffectGraph, deadlines: Dict[str, int]
) -> CauseEffectGraph:
    """Assign DM priorities from an explicit deadline map (extension)."""
    assigned = graph.copy()
    by_unit: Dict[str, List[Task]] = {}
    for task in assigned.tasks:
        if task.ecu is None:
            raise ModelError(f"task {task.name!r} must be mapped before priority assignment")
        by_unit.setdefault(task.ecu, []).append(task)
    for unit_tasks in by_unit.values():
        ordered = sorted(
            unit_tasks, key=lambda t: (deadlines.get(t.name, t.period), t.name)
        )
        for level, task in enumerate(ordered):
            assigned.replace_task(task.with_priority(level))
    return assigned


def assign_audsley(graph: CauseEffectGraph) -> CauseEffectGraph:
    """Audsley's optimal priority assignment under NP-FP (extension).

    Assign the *lowest* priority level to some task that is schedulable
    at that level (blocking from no one below, interference from all the
    rest above), then recurse on the remainder.  Raises
    :class:`SchedulabilityError` when no assignment exists at some
    level.
    """
    assigned = graph.copy()
    by_unit: Dict[str, List[Task]] = {}
    for task in assigned.tasks:
        if task.ecu is None:
            raise ModelError(f"task {task.name!r} must be mapped before priority assignment")
        by_unit.setdefault(task.ecu, []).append(task)

    for unit, unit_tasks in by_unit.items():
        executing = [t for t in unit_tasks if not t.is_instantaneous]
        instantaneous = [t for t in unit_tasks if t.is_instantaneous]
        remaining = list(executing)
        level = len(executing) - 1
        final: Dict[str, int] = {}
        while remaining:
            placed = False
            # Deterministic order: try larger periods first (RM-like
            # heuristic keeps the search short on easy sets).
            for candidate in sorted(remaining, key=lambda t: (-t.period, t.name)):
                # Trial set: candidate at `level`, all other remaining
                # tasks anywhere above it (priorities 0..level-1) —
                # Audsley's test is independent of their relative order.
                others = [t for t in remaining if t.name != candidate.name]
                trial = [t.with_priority(i) for i, t in enumerate(others)]
                trial.append(candidate.with_priority(level))
                try:
                    response_time_np_fp(candidate.with_priority(level), trial)
                except SchedulabilityError:
                    continue
                final[candidate.name] = level
                remaining = others
                level -= 1
                placed = True
                break
            if not placed:
                raise SchedulabilityError(
                    f"no feasible priority assignment on unit {unit!r} at level {level}"
                )
        for task in executing:
            assigned.replace_task(task.with_priority(final[task.name]))
        # Instantaneous tasks never execute; give them the lowest levels.
        for extra, task in enumerate(sorted(instantaneous, key=lambda t: t.name)):
            assigned.replace_task(task.with_priority(len(executing) + extra))
    return assigned

"""Worst-case response time analysis.

The paper assumes every task is schedulable (``R(tau) <= T(tau)``) and
uses the WCRT ``R(tau)`` as an ingredient of the backward-time bounds
(Lemmas 4 and 5).  This module implements the classical analyses the
paper cites:

* **Non-preemptive fixed-priority** (the paper's scheduler, and the CAN
  bus arbitration model): the response time of a job is its queueing
  delay until it *starts* — lower-priority blocking plus higher-priority
  interference — plus its own WCET.  With ``R_i <= T_i`` a single-job
  busy-window suffices; the start-time fixed point is

      s = B_i + sum_{j in hp(i)} (floor(s / T_j) + 1) * W_j

  where ``B_i = max_{l in lp(i)} W_l`` is the non-preemptive blocking
  factor (one lower-priority job at most, as it cannot be preempted once
  started).  Then ``R_i = s + W_i``.  This is the standard analysis of
  Davis et al. for CAN, restricted to the constrained-deadline case.

* **Preemptive fixed-priority** (extension; used for comparisons): the
  classical Joseph & Pandya recurrence ``R = W_i + sum ceil(R/T_j) W_j``.

With integer nanosecond times, both fixed points are exact.  Tasks with
``W = 0`` (sources) have ``R = 0``: they complete instantaneously at
release without occupying the processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.model.task import ModelError, Task
from repro.units import Time, floor_div


class SchedulabilityError(ModelError):
    """Raised when a response-time fixed point diverges past its bound."""


def partition_by_unit(tasks: Iterable[Task]) -> Dict[str, List[Task]]:
    """Group tasks by processing unit, rejecting unmapped tasks.

    Instantaneous (source) tasks are excluded from every partition: they
    consume no processor time, so they neither interfere with nor block
    other tasks.
    """
    by_unit: Dict[str, List[Task]] = {}
    for task in tasks:
        if task.is_instantaneous:
            continue
        if task.ecu is None:
            raise ModelError(f"task {task.name!r} is not mapped to a processing unit")
        if task.priority is None:
            raise ModelError(f"task {task.name!r} has no priority")
        by_unit.setdefault(task.ecu, []).append(task)
    for unit, group in by_unit.items():
        priorities = [t.priority for t in group]
        if len(set(priorities)) != len(priorities):
            raise ModelError(f"duplicate priorities on unit {unit!r}: {sorted(priorities)}")
    return by_unit


def higher_priority(task: Task, peers: Sequence[Task]) -> Tuple[Task, ...]:
    """``hp(task)``: same-unit tasks with higher priority (smaller number)."""
    assert task.priority is not None
    return tuple(
        peer
        for peer in peers
        if peer.name != task.name
        and peer.ecu == task.ecu
        and peer.priority is not None
        and peer.priority < task.priority
    )


def lower_priority(task: Task, peers: Sequence[Task]) -> Tuple[Task, ...]:
    """``lp(task)``: same-unit tasks with lower priority (larger number)."""
    assert task.priority is not None
    return tuple(
        peer
        for peer in peers
        if peer.name != task.name
        and peer.ecu == task.ecu
        and peer.priority is not None
        and peer.priority > task.priority
    )


def _release_jitter(task: Task) -> Time:
    """Bounded release jitter of ``task`` (0 unless jitter-modeled).

    Interference analysis charges a peer's jitter by shifting its
    release grid maximally early at the critical instant (Tindell's
    classical extension): ``n(w) = floor((w + J) / T) + 1`` releases
    can fall inside a level-``i`` busy window of length ``w``.
    """
    model = task.release_model
    return model.jitter if model.kind == "jitter" else 0


def _interference_period(task: Task) -> Time:
    """Worst-case release rate of ``task`` as an interferer.

    A sporadic task releases at most every ``min_gap``; periodic and
    jittered tasks keep their nominal period (jitter shifts the grid,
    it does not densify it — the shift is charged separately by
    :func:`_release_jitter`).
    """
    model = task.release_model
    return model.min_gap if model.kind == "sporadic" else task.period


def _deadline_budget(task: Task) -> Time:
    """Constrained-deadline budget: the minimum inter-release gap.

    The single-job busy-window argument of both analyses needs each
    job done before the task's next release, which can arrive as soon
    as ``T - J`` after the current one under bounded jitter, or
    ``min_gap`` for a sporadic task.
    """
    from repro.analysis_regime import min_release_gap

    return min_release_gap(task)


def blocking_factor(task: Task, peers: Sequence[Task]) -> Time:
    """Non-preemptive blocking: longest lower-priority WCET on the unit.

    At most one lower-priority job can delay ``task``: the one already
    executing when the job arrives (non-preemption).  We use the full
    WCET — a safe (by at most one time quantum pessimistic) variant of
    the usual ``max W_l - epsilon``.
    """
    lp = lower_priority(task, peers)
    if not lp:
        return 0
    return max(peer.wcet for peer in lp)


def response_time_np_fp(
    task: Task,
    peers: Sequence[Task],
    *,
    limit_factor: int = 64,
) -> Time:
    """WCRT of ``task`` under non-preemptive fixed-priority scheduling.

    ``peers`` is any superset of the tasks on the same unit (other units
    are filtered out).  Requires the resulting ``R`` to fit the task's
    minimum inter-release gap (constrained deadline, as the paper
    assumes; ``T`` for periodic tasks); raises
    :class:`SchedulabilityError` if the fixed point exceeds
    ``limit_factor * T`` without converging, or converges above that
    budget.

    Non-periodic release models are accounted for with the classical
    extensions: a jittered interferer contributes
    ``floor((s + J_j) / T_j) + 1`` releases (its grid shifted maximally
    early at the critical instant), a sporadic interferer releases
    back-to-back every ``min_gap``, and the analyzed task's own budget
    shrinks to its minimum inter-release gap.  Strictly periodic task
    sets reproduce the original fixed point bit for bit.
    """
    if task.is_instantaneous:
        return 0
    same_unit = [p for p in peers if p.ecu == task.ecu and not p.is_instantaneous]
    hp = higher_priority(task, same_unit)
    blocking = blocking_factor(task, same_unit)

    bound = limit_factor * task.period
    start = blocking  # queueing delay before the job may start
    while True:
        interference = sum(
            (floor_div(start + _release_jitter(peer), _interference_period(peer)) + 1)
            * peer.wcet
            for peer in hp
        )
        next_start = blocking + interference
        if next_start == start:
            break
        if next_start > bound:
            raise SchedulabilityError(
                f"start-time recurrence for {task.name!r} diverged beyond "
                f"{limit_factor} periods"
            )
        start = next_start
    response = start + task.wcet
    budget = _deadline_budget(task)
    if response > budget:
        raise SchedulabilityError(
            f"task {task.name!r} is unschedulable under NP-FP: "
            f"R={response} > minimum inter-release gap {budget}"
        )
    return response


def response_time_p_fp(
    task: Task,
    peers: Sequence[Task],
    *,
    limit_factor: int = 64,
) -> Time:
    """WCRT under *preemptive* fixed-priority scheduling (extension).

    The classical response-time recurrence; provided for comparison
    studies (e.g. how much the non-preemptive blocking term costs).
    """
    if task.is_instantaneous:
        return 0
    same_unit = [p for p in peers if p.ecu == task.ecu and not p.is_instantaneous]
    hp = higher_priority(task, same_unit)

    from repro.units import ceil_div

    bound = limit_factor * task.period
    response = task.wcet
    while True:
        interference = sum(
            ceil_div(response + _release_jitter(peer), _interference_period(peer))
            * peer.wcet
            for peer in hp
        )
        next_response = task.wcet + interference
        if next_response == response:
            break
        if next_response > bound:
            raise SchedulabilityError(
                f"response-time recurrence for {task.name!r} diverged beyond "
                f"{limit_factor} periods"
            )
        response = next_response
    budget = _deadline_budget(task)
    if response > budget:
        raise SchedulabilityError(
            f"task {task.name!r} is unschedulable under P-FP: "
            f"R={response} > minimum inter-release gap {budget}"
        )
    return response


@dataclass(frozen=True)
class ResponseTimeTable:
    """Cached WCRTs for every task of a system.

    Built once per system and shared by every analysis; the paper's
    bounds consume ``R(tau)`` repeatedly (per chain hop, per pair of
    chains), so caching matters at Fig. 6 scale.
    """

    values: Mapping[str, Time]

    def __getitem__(self, name: str) -> Time:
        try:
            return self.values[name]
        except KeyError:
            raise ModelError(f"no response time for task {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.values


def analyze_all(
    tasks: Sequence[Task],
    *,
    preemptive: bool = False,
) -> ResponseTimeTable:
    """Compute WCRTs for every task (sources get 0) on every unit."""
    analyzer = response_time_p_fp if preemptive else response_time_np_fp
    values: Dict[str, Time] = {}
    by_unit = partition_by_unit(tasks)
    for task in tasks:
        if task.is_instantaneous:
            values[task.name] = 0
        else:
            assert task.ecu is not None
            values[task.name] = analyzer(task, by_unit[task.ecu])
    return ResponseTimeTable(values=values)


def is_schedulable(tasks: Sequence[Task], *, preemptive: bool = False) -> bool:
    """True when every task meets ``R <= T`` under the chosen scheduler."""
    try:
        analyze_all(tasks, preemptive=preemptive)
    except SchedulabilityError:
        return False
    return True

"""Cause-effect chains (paths in the graph) and their decomposition.

A *chain* ``pi = (pi^1, ..., pi^{|pi|})`` is a directed path in the
cause-effect graph (Section II-A).  This module provides:

* :class:`Chain` — an immutable validated path with convenience slicing;
* :func:`enumerate_source_chains` — the set ``P`` of Definition 2's
  analysis: every chain starting at a source task and ending at the
  analyzed task;
* :func:`common_tasks` and :func:`decompose_pair` — the fork-join
  decomposition used by Theorem 2: split two chains sharing common tasks
  ``o_1 .. o_c`` into sub-chain pairs ``(alpha_i, beta_i)``;
* :func:`truncate_common_suffix` — drop the shared suffix of two chains
  (the backward job chain on a shared suffix is unique, so the disparity
  at the original analyzed task equals the disparity at the last
  divergence point; this realizes the paper's remark "consider the last
  joint task of them as the analyzed task").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.model.graph import CauseEffectGraph
from repro.model.task import ModelError, Task


@dataclass(frozen=True)
class Chain:
    """An immutable cause-effect chain (sequence of task names)."""

    tasks: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.tasks) < 1:
            raise ModelError("a chain must contain at least one task")
        if len(set(self.tasks)) != len(self.tasks):
            raise ModelError(f"chain repeats a task: {self.tasks}")

    @classmethod
    def of(cls, *tasks: str) -> "Chain":
        """Build a chain from task names: ``Chain.of("a", "b")``."""
        return cls(tuple(tasks))

    @property
    def head(self) -> str:
        """The first task of the chain (``pi^1``)."""
        return self.tasks[0]

    @property
    def tail(self) -> str:
        """The last task of the chain (``pi^{|pi|}``)."""
        return self.tasks[-1]

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[str]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> str:
        return self.tasks[index]

    def index(self, name: str) -> int:
        """Position of ``name`` within the chain (0-based)."""
        return self.tasks.index(name)

    def sub(self, start: int, stop: int) -> "Chain":
        """Sub-chain ``tasks[start:stop]`` (stop exclusive)."""
        if stop - start < 1:
            raise ModelError(f"empty sub-chain [{start}:{stop}] of {self.tasks}")
        return Chain(self.tasks[start:stop])

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """Consecutive ``(pi^i, pi^{i+1})`` pairs."""
        return tuple(zip(self.tasks, self.tasks[1:]))

    def validate(self, graph: CauseEffectGraph) -> None:
        """Check that every consecutive pair is an edge of ``graph``."""
        for src, dst in self.edges():
            if not graph.has_channel(src, dst):
                raise ModelError(
                    f"chain {self.tasks} uses non-existent channel {src!r}->{dst!r}"
                )

    def resolve(self, graph: CauseEffectGraph) -> Tuple[Task, ...]:
        """Task objects along the chain, after validation."""
        self.validate(graph)
        return tuple(graph.task(name) for name in self.tasks)

    def __repr__(self) -> str:
        return "Chain(" + " -> ".join(self.tasks) + ")"


def enumerate_source_chains(graph: CauseEffectGraph, task: str) -> Tuple[Chain, ...]:
    """The set ``P``: all chains from any source task to ``task``.

    If ``task`` is itself a source, the singleton chain ``(task,)`` is
    returned — such a task trivially has zero disparity.
    """
    if graph.is_source(task):
        return (Chain((task,)),)
    chains: List[Chain] = []
    for source in graph.source_ancestors(task):
        for path in graph.paths_between(source, task):
            chains.append(Chain(path))
    return tuple(chains)


def enumerate_all_chains(graph: CauseEffectGraph) -> Tuple[Chain, ...]:
    """All source-to-sink chains of the graph (used by reports/tests)."""
    chains: List[Chain] = []
    for source in graph.sources():
        for sink in graph.sinks():
            for path in graph.paths_between(source, sink):
                chains.append(Chain(path))
    return tuple(chains)


def common_tasks(
    lam: Chain, nu: Chain, graph: CauseEffectGraph, *, include_sources: bool = False
) -> Tuple[str, ...]:
    """Common tasks of two chains, in chain order — ``{o_1, ..., o_c}``.

    Theorem 2 excludes the *source* tasks from the common-task list (a
    shared source head is handled separately by the period-flooring
    case), hence ``include_sources=False`` by default.

    Raises :class:`ModelError` when the common tasks appear in different
    relative orders in the two chains — impossible for paths of a DAG,
    so hitting it signals a malformed input.
    """
    shared = set(lam.tasks) & set(nu.tasks)
    if not include_sources:
        shared = {name for name in shared if not graph.is_source(name)}
    in_lam = [name for name in lam.tasks if name in shared]
    in_nu = [name for name in nu.tasks if name in shared]
    if in_lam != in_nu:
        raise ModelError(
            f"common tasks of {lam} and {nu} disagree in order: {in_lam} vs {in_nu}"
        )
    return tuple(in_lam)


@dataclass(frozen=True)
class PairDecomposition:
    """Fork-join decomposition of a chain pair at common tasks.

    ``alphas[i]`` / ``betas[i]`` are the sub-chains of ``lam`` / ``nu``
    ending at common task ``joints[i]`` (``o_{i+1}`` in paper indexing,
    which is 1-based).  For ``i >= 1`` both sub-chains start at
    ``joints[i-1]``; ``alphas[0]`` / ``betas[0]`` start at the chain
    heads.
    """

    lam: Chain
    nu: Chain
    joints: Tuple[str, ...]
    alphas: Tuple[Chain, ...]
    betas: Tuple[Chain, ...]

    @property
    def c(self) -> int:
        """Number of common tasks (paper's ``c``)."""
        return len(self.joints)


def decompose_pair(lam: Chain, nu: Chain, graph: CauseEffectGraph) -> PairDecomposition:
    """Split ``lam`` and ``nu`` at their common non-source tasks.

    Both chains must end at the same (analyzed) task; it is always the
    last joint ``o_c``.  Each ``(alpha_i, beta_i)`` pair forms a
    fork-join sub-graph between consecutive joints.
    """
    if lam.tail != nu.tail:
        raise ModelError(
            f"chains must end at the same task: {lam.tail!r} vs {nu.tail!r}"
        )
    joints = common_tasks(lam, nu, graph)
    if not joints or joints[-1] != lam.tail:
        # The tail is common by construction; it is excluded only if it
        # is a source task, i.e. both chains are the singleton source.
        raise ModelError(
            f"chains {lam} and {nu} have no common non-source task at the tail"
        )
    alphas: List[Chain] = []
    betas: List[Chain] = []
    prev_lam = 0
    prev_nu = 0
    for joint in joints:
        i_lam = lam.index(joint)
        i_nu = nu.index(joint)
        alphas.append(lam.sub(prev_lam, i_lam + 1))
        betas.append(nu.sub(prev_nu, i_nu + 1))
        prev_lam = i_lam
        prev_nu = i_nu
    return PairDecomposition(
        lam=lam, nu=nu, joints=joints, alphas=tuple(alphas), betas=tuple(betas)
    )


def truncate_common_suffix(lam: Chain, nu: Chain) -> Tuple[Chain, Chain, str]:
    """Drop the maximal shared suffix of two chains ending at one task.

    Returns the truncated pair plus the new analyzed task (the first
    task of the shared suffix).  The immediate backward job chain along
    a shared suffix is unique, so every job of the original analyzed
    task traces to a single job of the divergence task; disparity is
    preserved exactly.

    When the chains are identical the result degenerates to two
    single-task chains at the head.
    """
    if lam.tail != nu.tail:
        raise ModelError(
            f"chains must end at the same task: {lam.tail!r} vs {nu.tail!r}"
        )
    k = 0
    max_k = min(len(lam), len(nu))
    while k < max_k and lam.tasks[-1 - k] == nu.tasks[-1 - k]:
        k += 1
    # k >= 1 always (shared tail).  Keep the first task of the shared
    # suffix as the new analyzed tail.
    cut_lam = lam.sub(0, len(lam) - k + 1)
    cut_nu = nu.sub(0, len(nu) - k + 1)
    return cut_lam, cut_nu, cut_lam.tail

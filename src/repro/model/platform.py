"""Hardware platform: ECUs, buses, mapping, and message-task insertion.

The platform of Section II-A: several Electronic Control Units, each
scheduling its tasks non-preemptively by fixed priority, connected by
one or more CAN-like buses.  A cross-ECU edge is realized by a periodic
*message task* on the bus; :func:`insert_message_tasks` rewrites a
logical graph into a deployed graph where every such edge passes through
its message task, so every downstream analysis treats bus hops uniformly
(a bus is just another processing unit, and CAN arbitration is
non-preemptive fixed-priority).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.model.graph import CauseEffectGraph
from repro.model.task import ModelError, Task, message_task
from repro.units import Time, us


@dataclass(frozen=True)
class ProcessingUnit:
    """A processing unit: an ECU or a bus.

    Both are scheduled non-preemptively by fixed priority, so they share
    one representation; ``is_bus`` only affects reporting and which unit
    :func:`insert_message_tasks` routes messages to.
    """

    name: str
    is_bus: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("processing unit name must be non-empty")


@dataclass(frozen=True)
class Platform:
    """A set of processing units (at least one ECU, optionally buses)."""

    units: Tuple[ProcessingUnit, ...]

    def __post_init__(self) -> None:
        names = [unit.name for unit in self.units]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate processing unit names: {names}")
        if not any(not unit.is_bus for unit in self.units):
            raise ModelError("platform needs at least one ECU")

    @classmethod
    def symmetric(cls, n_ecus: int, *, bus: bool = True) -> "Platform":
        """``n_ecus`` identical ECUs plus (optionally) a single CAN bus."""
        if n_ecus < 1:
            raise ModelError(f"need at least one ECU, got {n_ecus}")
        units = [ProcessingUnit(f"ecu{i}") for i in range(n_ecus)]
        if bus:
            units.append(ProcessingUnit("can0", is_bus=True))
        return cls(tuple(units))

    @classmethod
    def single_ecu(cls) -> "Platform":
        """A platform with exactly one ECU and no bus."""
        return cls((ProcessingUnit("ecu0"),))

    @property
    def ecus(self) -> Tuple[ProcessingUnit, ...]:
        """The non-bus processing units."""
        return tuple(unit for unit in self.units if not unit.is_bus)

    @property
    def buses(self) -> Tuple[ProcessingUnit, ...]:
        """The bus processing units."""
        return tuple(unit for unit in self.units if unit.is_bus)

    def unit(self, name: str) -> ProcessingUnit:
        """Look up a processing unit by name."""
        for candidate in self.units:
            if candidate.name == name:
                return candidate
        raise ModelError(f"unknown processing unit {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(unit.name == name for unit in self.units)


#: Default worst-case transmission time of one CAN frame.  A classical
#: 500 kbit/s CAN bus transmits a worst-case-stuffed 8-byte data frame
#: (135 bits) in 270 us; at 1 Mbit/s it is 135 us.  We default to the
#: 500 kbit/s figure, matching common automotive configurations.
DEFAULT_FRAME_TIME: Time = us(270)


def insert_message_tasks(
    graph: CauseEffectGraph,
    platform: Platform,
    *,
    bus: Optional[str] = None,
    frame_time: Time = DEFAULT_FRAME_TIME,
    priority_start: int = 0,
) -> CauseEffectGraph:
    """Rewrite cross-ECU edges through periodic message tasks on a bus.

    For every channel ``src -> dst`` whose endpoint tasks are mapped to
    different ECUs, the edge is replaced by ``src -> msg -> dst`` where
    ``msg`` is a message task on ``bus`` with the producer's period (the
    producer writes one frame per job) and WCET ``frame_time``.  Message
    priorities are assigned rate-monotonically starting from
    ``priority_start`` (smaller period = smaller number = higher
    priority), mirroring how CAN identifiers are commonly assigned.

    Channels with capacity > 1 keep their capacity on the ``msg -> dst``
    hop (the receiving buffer), while ``src -> msg`` is a plain register.

    Edges between tasks on the same ECU (or involving unmapped /
    instantaneous source tasks colocated with their consumer) are left
    untouched — intra-ECU communication has zero delay in the model.
    """
    if bus is None:
        buses = platform.buses
        if not buses:
            raise ModelError("platform has no bus; cannot insert message tasks")
        bus = buses[0].name
    elif bus not in platform:
        raise ModelError(f"unknown bus {bus!r}")

    crossing: List[Tuple[str, str]] = []
    for channel in graph.channels:
        src_task = graph.task(channel.src)
        dst_task = graph.task(channel.dst)
        if src_task.ecu is None or dst_task.ecu is None:
            raise ModelError(
                f"cannot deploy: task {channel.src!r} or {channel.dst!r} is unmapped"
            )
        if src_task.ecu != dst_task.ecu:
            crossing.append((channel.src, channel.dst))

    deployed = CauseEffectGraph()
    for task in graph.tasks:
        deployed.add_task(task)

    # Rate-monotonic priorities for the new messages, offset so they do
    # not collide with anything else on the bus.
    messages: List[Task] = []
    for src, dst in crossing:
        producer = graph.task(src)
        messages.append(
            message_task(
                name=f"msg_{src}__{dst}",
                period=producer.period,
                transmission_time=frame_time,
                bus=bus,
            )
        )
    order = sorted(range(len(messages)), key=lambda i: (messages[i].period, messages[i].name))
    existing_on_bus = sum(1 for t in graph.tasks if t.ecu == bus)
    for rank, idx in enumerate(order):
        messages[idx] = messages[idx].with_priority(priority_start + existing_on_bus + rank)
    for message in messages:
        deployed.add_task(message)

    crossing_set = set(crossing)
    msg_by_edge = {
        (src, dst): f"msg_{src}__{dst}" for src, dst in crossing
    }
    for channel in graph.channels:
        key = (channel.src, channel.dst)
        if key in crossing_set:
            msg = msg_by_edge[key]
            deployed.add_channel(channel.src, msg, capacity=1)
            deployed.add_channel(msg, channel.dst, capacity=channel.capacity)
        else:
            deployed.add_channel(channel.src, channel.dst, capacity=channel.capacity)
    return deployed


def assign_round_robin(
    graph: CauseEffectGraph,
    platform: Platform,
    *,
    skip_sources: bool = False,
) -> CauseEffectGraph:
    """Map tasks to ECUs round-robin in topological order.

    Source tasks can optionally be pinned to the first ECU (they never
    execute, so their mapping only affects which edges count as
    cross-ECU; the paper's sensors feed their first compute stage
    locally, which ``skip_sources=True`` approximates by colocating each
    source with its first successor).
    """
    ecus = platform.ecus
    mapped = graph.copy()
    index = 0
    for name in mapped.topological_order():
        task = mapped.task(name)
        if skip_sources and mapped.is_source(name):
            continue
        mapped.replace_task(task.with_mapping(ecus[index % len(ecus)].name))
        index += 1
    if skip_sources:
        for name in mapped.task_names:
            if mapped.is_source(name):
                succs = mapped.successors(name)
                ecu = mapped.task(succs[0]).ecu if succs else ecus[0].name
                mapped.replace_task(mapped.task(name).with_mapping(ecu or ecus[0].name))
    return mapped


def assign_random(
    graph: CauseEffectGraph,
    platform: Platform,
    rng,
    *,
    colocate_sources: bool = True,
) -> CauseEffectGraph:
    """Map tasks to ECUs uniformly at random (``rng``: random.Random).

    With ``colocate_sources=True`` each source task is placed on the ECU
    of its first successor, so the sensor-to-first-stage hop stays local.
    """
    ecus = platform.ecus
    mapped = graph.copy()
    for name in mapped.topological_order():
        if colocate_sources and mapped.is_source(name):
            continue
        ecu = ecus[rng.randrange(len(ecus))].name
        mapped.replace_task(mapped.task(name).with_mapping(ecu))
    if colocate_sources:
        for name in mapped.task_names:
            if mapped.is_source(name):
                succs = mapped.successors(name)
                ecu = mapped.task(succs[0]).ecu if succs else ecus[0].name
                mapped.replace_task(mapped.task(name).with_mapping(ecu))
    return mapped

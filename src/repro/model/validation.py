"""Structural and scheduling validation of cause-effect systems.

Collects every model constraint in one place so that graph builders,
generators, and the :class:`repro.model.system.System` constructor can
produce actionable error messages instead of failing deep inside an
analysis:

* source tasks must have ``W = B = 0`` (paper's convention);
* every task must be mapped and prioritized (unique per unit);
* the graph should be weakly connected (a warning-level issue surfaced
  as a report, not an exception);
* every task must satisfy ``R(tau) <= T(tau)`` under NP-FP — the paper's
  standing schedulability assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.model.graph import CauseEffectGraph
from repro.model.task import ModelError
from repro.sched.response_time import SchedulabilityError, analyze_all


@dataclass
class ValidationReport:
    """Outcome of validating a graph: hard errors and soft warnings."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no hard error was recorded."""
        return not self.errors

    def raise_if_failed(self) -> None:
        """Raise :class:`ModelError` summarizing all recorded errors."""
        if self.errors:
            raise ModelError("; ".join(self.errors))


def validate_structure(graph: CauseEffectGraph) -> ValidationReport:
    """Check graph-level constraints (no scheduling analysis)."""
    report = ValidationReport()
    if len(graph) == 0:
        report.errors.append("graph has no tasks")
        return report

    for name in graph.task_names:
        task = graph.task(name)
        if graph.is_source(name):
            if task.wcet != 0 or task.bcet != 0:
                report.errors.append(
                    f"source task {name!r} must have W=B=0 "
                    f"(got W={task.wcet}, B={task.bcet})"
                )
        elif task.wcet == 0:
            report.warnings.append(
                f"non-source task {name!r} has zero WCET; it will behave "
                f"like an instantaneous relay"
            )

    if not graph.sources():
        report.errors.append("graph has no source task")
    if not graph.sinks():
        report.errors.append("graph has no sink task")
    if not graph.is_weakly_connected():
        report.warnings.append("graph is not weakly connected")

    # Non-source tasks unreachable from any source never receive data.
    sources = set(graph.sources())
    reachable = set(sources)
    for source in sources:
        reachable |= graph.descendants(source)
    unreachable = [n for n in graph.task_names if n not in reachable]
    if unreachable:
        report.warnings.append(
            f"tasks unreachable from any source: {sorted(unreachable)}"
        )
    return report


def validate_deployment(graph: CauseEffectGraph) -> ValidationReport:
    """Check mapping and priority constraints."""
    report = ValidationReport()
    seen: dict = {}
    for task in graph.tasks:
        if task.ecu is None:
            report.errors.append(f"task {task.name!r} is not mapped to a unit")
            continue
        if task.priority is None:
            report.errors.append(f"task {task.name!r} has no priority")
            continue
        key = (task.ecu, task.priority)
        if not task.is_instantaneous:
            if key in seen:
                report.errors.append(
                    f"tasks {seen[key]!r} and {task.name!r} share priority "
                    f"{task.priority} on unit {task.ecu!r}"
                )
            seen[key] = task.name
    return report


def validate_schedulability(graph: CauseEffectGraph) -> ValidationReport:
    """Check the paper's standing assumption ``R(tau) <= T(tau)``."""
    report = ValidationReport()
    try:
        analyze_all(graph.tasks)
    except SchedulabilityError as exc:
        report.errors.append(str(exc))
    except ModelError as exc:
        report.errors.append(str(exc))
    return report


def validate_system(graph: CauseEffectGraph) -> ValidationReport:
    """Run all validation stages, accumulating errors and warnings."""
    combined = ValidationReport()
    for stage in (validate_structure, validate_deployment, validate_schedulability):
        partial = stage(graph)
        combined.errors.extend(partial.errors)
        combined.warnings.extend(partial.warnings)
        if partial.errors and stage is not validate_schedulability:
            # Scheduling analysis requires a well-formed deployment;
            # stop early to avoid cascading errors.
            break
    return combined

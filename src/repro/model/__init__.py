"""System model: tasks, graphs, chains, platforms, validation."""

from repro.model.chain import (
    Chain,
    PairDecomposition,
    common_tasks,
    decompose_pair,
    enumerate_all_chains,
    enumerate_source_chains,
    truncate_common_suffix,
)
from repro.model.graph import CauseEffectGraph, Channel
from repro.model.platform import (
    DEFAULT_FRAME_TIME,
    Platform,
    ProcessingUnit,
    assign_random,
    assign_round_robin,
    insert_message_tasks,
)
from repro.model.system import System
from repro.model.task import (
    PERIODIC_RELEASE,
    ModelError,
    ReleaseModel,
    Task,
    message_task,
    source_task,
)
from repro.model.validation import (
    ValidationReport,
    validate_deployment,
    validate_schedulability,
    validate_structure,
    validate_system,
)

__all__ = [
    "Chain",
    "PairDecomposition",
    "common_tasks",
    "decompose_pair",
    "enumerate_all_chains",
    "enumerate_source_chains",
    "truncate_common_suffix",
    "CauseEffectGraph",
    "Channel",
    "DEFAULT_FRAME_TIME",
    "Platform",
    "ProcessingUnit",
    "assign_random",
    "assign_round_robin",
    "insert_message_tasks",
    "System",
    "ModelError",
    "PERIODIC_RELEASE",
    "ReleaseModel",
    "Task",
    "message_task",
    "source_task",
    "ValidationReport",
    "validate_deployment",
    "validate_schedulability",
    "validate_structure",
    "validate_system",
]

"""CAN frame timing (Bosch CAN 2.0, the paper's bus reference [10]).

The paper models inter-ECU communication as periodic tasks on a CAN
bus; the message task's WCET is the worst-case frame transmission
time.  This module computes it from first principles so deployments
can size message tasks from payload lengths and bitrates instead of a
hard-coded constant.

Worst-case frame length in bits (classic CAN, with worst-case bit
stuffing over the stuffable region):

* standard (11-bit) identifier:  ``8 n + 47 + floor((34 + 8 n - 1) / 4)``
* extended (29-bit) identifier:  ``8 n + 67 + floor((54 + 8 n - 1) / 4)``

where ``n`` is the number of payload bytes (0..8).  These are the
classical formulas from Davis et al.'s CAN schedulability analysis:
34 (54) bits of header/CRC are subject to stuffing along with the
payload, one stuff bit can appear after the first 4 bits and then
every 4 bits, and 13 (of the 47/67) framing bits — CRC delimiter, ACK,
EOF, intermission — are not stuffable.

For an 8-byte standard frame this gives 135 bits: 270 us at 500 kbit/s
and 135 us at 1 Mbit/s — the figures commonly used in automotive
timing analysis.
"""

from __future__ import annotations

from repro.model.task import ModelError
from repro.units import NS_PER_S, Time

#: Common automotive bitrates (bit/s).
BITRATE_125K = 125_000
BITRATE_250K = 250_000
BITRATE_500K = 500_000
BITRATE_1M = 1_000_000


def frame_bits(payload_bytes: int, *, extended_id: bool = False) -> int:
    """Worst-case frame length in bits, including stuff bits."""
    if not 0 <= payload_bytes <= 8:
        raise ModelError(
            f"classic CAN payload is 0..8 bytes, got {payload_bytes}"
        )
    data_bits = 8 * payload_bytes
    if extended_id:
        overhead = 67
        stuffable = 54 + data_bits
    else:
        overhead = 47
        stuffable = 34 + data_bits
    stuff_bits = (stuffable - 1) // 4
    return data_bits + overhead + stuff_bits


def frame_time(
    payload_bytes: int,
    bitrate: int = BITRATE_500K,
    *,
    extended_id: bool = False,
) -> Time:
    """Worst-case transmission time of one frame, in nanoseconds.

    The result is exact integer arithmetic: ``bits * 1e9 / bitrate``
    rounded up (a partial bit still occupies the bus until its end).
    """
    if bitrate <= 0:
        raise ModelError(f"bitrate must be positive, got {bitrate}")
    bits = frame_bits(payload_bytes, extended_id=extended_id)
    return -((-bits * NS_PER_S) // bitrate)  # ceiling division


def best_case_frame_time(
    payload_bytes: int,
    bitrate: int = BITRATE_500K,
    *,
    extended_id: bool = False,
) -> Time:
    """Best-case transmission time: no stuff bits at all."""
    if bitrate <= 0:
        raise ModelError(f"bitrate must be positive, got {bitrate}")
    if not 0 <= payload_bytes <= 8:
        raise ModelError(
            f"classic CAN payload is 0..8 bytes, got {payload_bytes}"
        )
    data_bits = 8 * payload_bytes
    overhead = 67 if extended_id else 47
    bits = data_bits + overhead
    return -((-bits * NS_PER_S) // bitrate)

"""Periodic task model.

A vertex of the cause-effect graph is a periodic task
``(W(tau), B(tau), T(tau))`` (Section II-A of the paper), statically
mapped to a processing unit and scheduled there by non-preemptive
fixed-priority scheduling.  Source tasks — vertices with no incoming
edges — model external stimuli (sensors): they have ``W = B = 0``,
consume no processing time, and stamp each produced token with its
release time.

Cross-ECU communication is modelled, as in the paper, by *message tasks*
on a bus processing unit; a message task is an ordinary :class:`Task`
whose ``ecu`` is the bus (see :mod:`repro.model.platform`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.units import Time, format_time


class ModelError(ValueError):
    """Raised when a task, graph, or system violates a model constraint."""


@dataclass(frozen=True)
class ReleaseModel:
    """How a task's jobs are released over time.

    Three kinds are supported:

    * ``"periodic"`` — the paper's model: job ``k`` releases exactly at
      ``offset + k * period``.  No randomness; the default.
    * ``"jitter"`` — bounded release jitter: job ``k`` releases at
      ``offset + k * period + J_k`` with ``J_k`` drawn uniformly from
      ``[0, jitter]`` out of the task's own deterministic RNG stream
      (derived from the simulation seed and the task name, independent
      of the execution-time policy stream).  ``jitter < period`` keeps
      per-task releases strictly increasing.
    * ``"sporadic"`` — sporadic releases: the first job releases at
      ``offset``, and each inter-arrival gap is drawn uniformly from
      ``[min_gap, max_gap]``.  The task's ``period`` stays the nominal
      period used for LET deadlines and analytical bounds.

    Non-periodic models are **simulation-only** regimes for most of the
    paper's analyses; see :mod:`repro.analysis_regime`.
    """

    kind: str = "periodic"
    jitter: Time = 0
    min_gap: Time = 0
    max_gap: Time = 0

    def __post_init__(self) -> None:
        if self.kind not in ("periodic", "jitter", "sporadic"):
            raise ModelError(
                f"unknown release model kind {self.kind!r} "
                f"(expected 'periodic', 'jitter' or 'sporadic')"
            )
        if self.kind == "jitter":
            if self.jitter < 0:
                raise ModelError(
                    f"release jitter must be non-negative, got {self.jitter}"
                )
        elif self.kind == "sporadic":
            if self.min_gap <= 0:
                raise ModelError(
                    f"sporadic min_gap must be positive, got {self.min_gap}"
                )
            if self.max_gap < self.min_gap:
                raise ModelError(
                    f"sporadic max_gap ({self.max_gap}) is below min_gap "
                    f"({self.min_gap})"
                )

    @property
    def is_periodic(self) -> bool:
        """True when releases are strictly periodic (jitter 0 counts)."""
        return self.kind == "periodic" or (self.kind == "jitter" and self.jitter == 0)

    @property
    def draws_randomness(self) -> bool:
        """True when release instants consume the task's RNG stream."""
        return (self.kind == "jitter" and self.jitter > 0) or self.kind == "sporadic"

    @classmethod
    def periodic(cls) -> "ReleaseModel":
        """The strictly periodic release model (the default)."""
        return PERIODIC_RELEASE

    @classmethod
    def jittered(cls, jitter: Time) -> "ReleaseModel":
        """Bounded release jitter drawn from ``[0, jitter]`` per job."""
        return cls(kind="jitter", jitter=jitter)

    @classmethod
    def sporadic(cls, min_gap: Time, max_gap: Time) -> "ReleaseModel":
        """Sporadic releases with inter-arrivals in ``[min_gap, max_gap]``."""
        return cls(kind="sporadic", min_gap=min_gap, max_gap=max_gap)

    def describe(self) -> str:
        """Compact human-readable form used by ``Task.describe`` and the CLI."""
        if self.kind == "jitter":
            return f"jitter<={format_time(self.jitter)}"
        if self.kind == "sporadic":
            return (
                f"sporadic[{format_time(self.min_gap)},"
                f"{format_time(self.max_gap)}]"
            )
        return "periodic"


#: Shared default instance; the common case stays allocation-free.
PERIODIC_RELEASE = ReleaseModel()


@dataclass(frozen=True)
class Task:
    """A periodic task (one vertex of the cause-effect graph).

    Attributes:
        name: Unique identifier within a graph.
        period: Activation period ``T(tau)`` in integer nanoseconds.
        wcet: Worst-case execution time ``W(tau)`` in nanoseconds.
        bcet: Best-case execution time ``B(tau)`` in nanoseconds.
        ecu: Name of the processing unit the task is mapped to.  ``None``
            means "not yet mapped"; analyses that need scheduling
            information reject unmapped tasks.
        priority: Fixed priority; **smaller value = higher priority**.
            Must be unique among tasks sharing an ECU.  ``None`` means
            "not yet assigned".
        offset: Release offset of the first job relative to system start,
            in nanoseconds.  Only the simulator consumes offsets; the
            analyses are offset-agnostic (they hold for every offset
            assignment, as in the paper).
        kind: Free-form role tag (``"compute"``, ``"source"``,
            ``"message"``); informational except that validation checks
            source conventions.
        release_model: How jobs are released (:class:`ReleaseModel`).
            Defaults to strictly periodic; bounded jitter and sporadic
            releases are simulation-only extensions of the paper's
            model.
    """

    name: str
    period: Time
    wcet: Time
    bcet: Time
    ecu: Optional[str] = None
    priority: Optional[int] = None
    offset: Time = 0
    kind: str = "compute"
    release_model: ReleaseModel = PERIODIC_RELEASE

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("task name must be non-empty")
        if self.period <= 0:
            raise ModelError(f"task {self.name!r}: period must be positive, got {self.period}")
        if self.wcet < 0:
            raise ModelError(f"task {self.name!r}: WCET must be non-negative, got {self.wcet}")
        if self.bcet < 0:
            raise ModelError(f"task {self.name!r}: BCET must be non-negative, got {self.bcet}")
        if self.bcet > self.wcet:
            raise ModelError(
                f"task {self.name!r}: BCET ({self.bcet}) exceeds WCET ({self.wcet})"
            )
        if self.wcet > self.period:
            raise ModelError(
                f"task {self.name!r}: WCET ({self.wcet}) exceeds period "
                f"({self.period}); the task cannot be schedulable"
            )
        if self.offset < 0:
            raise ModelError(f"task {self.name!r}: offset must be non-negative, got {self.offset}")
        rm = self.release_model
        if not isinstance(rm, ReleaseModel):
            raise ModelError(
                f"task {self.name!r}: release_model must be a ReleaseModel, "
                f"got {type(rm).__name__}"
            )
        if rm.kind == "jitter" and rm.jitter >= self.period:
            raise ModelError(
                f"task {self.name!r}: release jitter ({rm.jitter}) must stay "
                f"below the period ({self.period}) so releases remain ordered"
            )

    @property
    def utilization(self) -> float:
        """Processor utilization ``W(tau) / T(tau)``."""
        return self.wcet / self.period

    @property
    def is_instantaneous(self) -> bool:
        """True when the task consumes no processing time (``W = 0``).

        Source tasks are instantaneous by the paper's convention; the
        simulator completes their jobs at release without occupying an
        ECU.
        """
        return self.wcet == 0

    def with_offset(self, offset: Time) -> "Task":
        """Return a copy of this task with a different release offset."""
        return replace(self, offset=offset)

    def with_priority(self, priority: int) -> "Task":
        """Return a copy of this task with a different priority."""
        return replace(self, priority=priority)

    def with_mapping(self, ecu: str) -> "Task":
        """Return a copy of this task mapped to ``ecu``."""
        return replace(self, ecu=ecu)

    def with_release_model(self, release_model: ReleaseModel) -> "Task":
        """Return a copy of this task with a different release model."""
        return replace(self, release_model=release_model)

    def describe(self) -> str:
        """One-line human-readable summary used by examples and the CLI."""
        parts = [
            f"{self.name}",
            f"T={format_time(self.period)}",
            f"W={format_time(self.wcet)}",
            f"B={format_time(self.bcet)}",
        ]
        if self.ecu is not None:
            parts.append(f"ecu={self.ecu}")
        if self.priority is not None:
            parts.append(f"prio={self.priority}")
        if not self.release_model.is_periodic:
            parts.append(f"rel={self.release_model.describe()}")
        return " ".join(parts)


def source_task(
    name: str,
    period: Time,
    *,
    ecu: Optional[str] = None,
    priority: Optional[int] = None,
    offset: Time = 0,
    release_model: ReleaseModel = PERIODIC_RELEASE,
) -> Task:
    """Construct a source (sensor) task.

    Source tasks follow the paper's convention ``W = B = 0``: they are
    external stimuli that produce timestamped data without consuming any
    computing resource.  They may still be nominally mapped to an ECU for
    bookkeeping, but never occupy it.
    """
    return Task(
        name=name,
        period=period,
        wcet=0,
        bcet=0,
        ecu=ecu,
        priority=priority,
        offset=offset,
        kind="source",
        release_model=release_model,
    )


def message_task(
    name: str,
    period: Time,
    transmission_time: Time,
    *,
    bus: str,
    priority: Optional[int] = None,
    jitter_free_bcet: Optional[Time] = None,
    offset: Time = 0,
    release_model: ReleaseModel = PERIODIC_RELEASE,
) -> Task:
    """Construct a bus message task for a cross-ECU edge.

    The paper models communication between tasks on different ECUs "as a
    periodic task on the bus" (Section II-A).  A CAN-like bus arbitrates
    frames non-preemptively by fixed priority, which is exactly the NP-FP
    model used for ECUs, so a message is an ordinary task whose ``ecu``
    is the bus unit.

    Args:
        name: Message task name.
        period: Transmission period (typically the producer's period).
        transmission_time: Worst-case frame transmission time (the WCET
            on the bus).
        bus: Name of the bus processing unit.
        priority: CAN identifier priority (smaller = higher).
        jitter_free_bcet: Best-case transmission time; defaults to the
            worst case (fixed frame length).
        offset: Release offset.
    """
    bcet = transmission_time if jitter_free_bcet is None else jitter_free_bcet
    return Task(
        name=name,
        period=period,
        wcet=transmission_time,
        bcet=bcet,
        ecu=bus,
        priority=priority,
        offset=offset,
        kind="message",
        release_model=release_model,
    )

"""Cause-effect graph: a DAG of periodic tasks connected by channels.

The graph ``G = <V, E>`` of Section II-A.  Vertices are :class:`Task`
objects; each edge ``(tau_i, tau_j)`` is a :class:`Channel` — the input
channel of ``tau_j`` and output channel of ``tau_i``.  A channel is a
buffer with size 1 by default (an overwrite register under implicit
communication); the optimization of Section IV enlarges selected
channels into FIFOs of capacity ``n > 1``.

The class is a plain adjacency-dict DAG rather than a networkx wrapper:
the analyses need exact, explicit semantics (channel capacities, source
conventions) and the structure queries used here are simple.  Conversion
helpers to/from ``networkx`` live in :mod:`repro.gen.graphgen` where the
random generators need them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.model.task import ModelError, Task
from repro.units import Time


@dataclass(frozen=True)
class Channel:
    """A directed communication channel (one edge of the graph).

    Attributes:
        src: Producer task name.
        dst: Consumer task name.
        capacity: Buffer capacity.  ``1`` is the default overwrite
            register of the base model.  Capacities ``n > 1`` follow the
            FIFO semantics of Section IV: a reader always *peeks* the
            oldest element; a write enqueues and evicts the oldest
            element when the buffer is full.
    """

    src: str
    dst: str
    capacity: int = 1

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ModelError(
                f"channel {self.src}->{self.dst}: capacity must be >= 1, got {self.capacity}"
            )

    @property
    def key(self) -> Tuple[str, str]:
        """The ``(src, dst)`` identifier of this channel."""
        return (self.src, self.dst)


class CauseEffectGraph:
    """A directed acyclic graph of tasks with explicit channels.

    Construction is incremental (``add_task`` / ``add_channel``) or bulk
    (:meth:`from_tasks`).  Acyclicity is enforced on every edge insert;
    all structural queries (sources, sinks, predecessors, chains) are
    derived from the adjacency maps.
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, Task] = {}
        self._channels: Dict[Tuple[str, str], Channel] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tasks(
        cls,
        tasks: Iterable[Task],
        edges: Iterable[Tuple[str, str]] = (),
        *,
        capacities: Optional[Mapping[Tuple[str, str], int]] = None,
    ) -> "CauseEffectGraph":
        """Build a graph from a task collection and ``(src, dst)`` edges."""
        graph = cls()
        for task in tasks:
            graph.add_task(task)
        capacities = dict(capacities or {})
        for src, dst in edges:
            graph.add_channel(src, dst, capacity=capacities.get((src, dst), 1))
        return graph

    def add_task(self, task: Task) -> None:
        """Insert a task vertex; names must be unique."""
        if task.name in self._tasks:
            raise ModelError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._succ[task.name] = []
        self._pred[task.name] = []

    def add_channel(self, src: str, dst: str, *, capacity: int = 1) -> Channel:
        """Insert an edge ``src -> dst``; rejects cycles and duplicates."""
        self._require_task(src)
        self._require_task(dst)
        if src == dst:
            raise ModelError(f"self-loop on task {src!r} is not allowed")
        if (src, dst) in self._channels:
            raise ModelError(f"duplicate channel {src!r}->{dst!r}")
        if self._reaches(dst, src):
            raise ModelError(f"channel {src!r}->{dst!r} would create a cycle")
        channel = Channel(src=src, dst=dst, capacity=capacity)
        self._channels[(src, dst)] = channel
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        return channel

    def replace_task(self, task: Task) -> None:
        """Swap in a modified task object (same name, new attributes)."""
        self._require_task(task.name)
        self._tasks[task.name] = task

    def set_channel_capacity(self, src: str, dst: str, capacity: int) -> None:
        """Resize the buffer of an existing channel (Section IV design)."""
        channel = self.channel(src, dst)
        self._channels[(src, dst)] = replace(channel, capacity=capacity)

    def copy(self) -> "CauseEffectGraph":
        """Deep-enough copy: tasks and channels are immutable values."""
        clone = CauseEffectGraph()
        for task in self._tasks.values():
            clone.add_task(task)
        for channel in self._channels.values():
            clone.add_channel(channel.src, channel.dst, capacity=channel.capacity)
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        self._require_task(name)
        return self._tasks[name]

    def channel(self, src: str, dst: str) -> Channel:
        """Look up the channel of edge ``src -> dst``."""
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise ModelError(f"no channel {src!r}->{dst!r}") from None

    def has_channel(self, src: str, dst: str) -> bool:
        """True when the edge ``src -> dst`` exists."""
        return (src, dst) in self._channels

    @property
    def tasks(self) -> Tuple[Task, ...]:
        """All tasks, in insertion order."""
        return tuple(self._tasks.values())

    @property
    def task_names(self) -> Tuple[str, ...]:
        """All task names, in insertion order."""
        return tuple(self._tasks)

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """All channels, in insertion order."""
        return tuple(self._channels.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def successors(self, name: str) -> Tuple[str, ...]:
        """Names of the direct successors of ``name``."""
        self._require_task(name)
        return tuple(self._succ[name])

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """Names of the direct predecessors of ``name``."""
        self._require_task(name)
        return tuple(self._pred[name])

    def in_degree(self, name: str) -> int:
        """Number of incoming edges of ``name``."""
        return len(self.predecessors(name))

    def out_degree(self, name: str) -> int:
        """Number of outgoing edges of ``name``."""
        return len(self.successors(name))

    def sources(self) -> Tuple[str, ...]:
        """Tasks with no incoming edges (the sensors of the application)."""
        return tuple(name for name in self._tasks if not self._pred[name])

    def sinks(self) -> Tuple[str, ...]:
        """Tasks with no outgoing edges (the actuators / final outputs)."""
        return tuple(name for name in self._tasks if not self._succ[name])

    def is_source(self, name: str) -> bool:
        """True when ``name`` has no incoming edges."""
        return self.in_degree(name) == 0

    def is_sink(self, name: str) -> bool:
        """True when ``name`` has no outgoing edges."""
        return self.out_degree(name) == 0

    def topological_order(self) -> Tuple[str, ...]:
        """Kahn topological order; stable with respect to insertion order."""
        in_deg = {name: len(self._pred[name]) for name in self._tasks}
        ready = [name for name in self._tasks if in_deg[name] == 0]
        order: List[str] = []
        cursor = 0
        while cursor < len(ready):
            name = ready[cursor]
            cursor += 1
            order.append(name)
            for succ in self._succ[name]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            raise ModelError("graph contains a cycle")  # unreachable by construction
        return tuple(order)

    def ancestors(self, name: str) -> Set[str]:
        """All tasks with a directed path to ``name`` (excluding itself)."""
        self._require_task(name)
        seen: Set[str] = set()
        stack = list(self._pred[name])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._pred[node])
        return seen

    def descendants(self, name: str) -> Set[str]:
        """All tasks reachable from ``name`` (excluding itself)."""
        self._require_task(name)
        seen: Set[str] = set()
        stack = list(self._succ[name])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succ[node])
        return seen

    def source_ancestors(self, name: str) -> Tuple[str, ...]:
        """Source tasks whose data can propagate to ``name``."""
        if self.is_source(name):
            return (name,)
        return tuple(a for a in sorted(self.ancestors(name)) if self.is_source(a))

    def paths_between(self, src: str, dst: str) -> Iterator[Tuple[str, ...]]:
        """Enumerate every directed path from ``src`` to ``dst``.

        Depth-first enumeration; path counts in cause-effect graphs of
        the sizes studied in the paper (<= 35 tasks) are small.
        """
        self._require_task(src)
        self._require_task(dst)
        path: List[str] = [src]

        def walk(node: str) -> Iterator[Tuple[str, ...]]:
            if node == dst:
                yield tuple(path)
                return
            for succ in self._succ[node]:
                path.append(succ)
                yield from walk(succ)
                path.pop()

        yield from walk(src)

    def is_weakly_connected(self) -> bool:
        """True when the underlying undirected graph is connected."""
        if not self._tasks:
            return True
        first = next(iter(self._tasks))
        seen = {first}
        stack = [first]
        while stack:
            node = stack.pop()
            for neigh in list(self._succ[node]) + list(self._pred[node]):
                if neigh not in seen:
                    seen.add(neigh)
                    stack.append(neigh)
        return len(seen) == len(self._tasks)

    def hyperperiod(self) -> Time:
        """LCM of all task periods (simulation horizon helper)."""
        from repro.units import lcm

        return lcm(*(task.period for task in self._tasks.values()))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_task(self, name: str) -> None:
        if name not in self._tasks:
            raise ModelError(f"unknown task {name!r}")

    def _reaches(self, start: str, goal: str) -> bool:
        if start == goal:
            return True
        stack = [start]
        seen = {start}
        while stack:
            node = stack.pop()
            for succ in self._succ[node]:
                if succ == goal:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CauseEffectGraph(tasks={len(self._tasks)}, "
            f"channels={len(self._channels)}, sources={list(self.sources())}, "
            f"sinks={list(self.sinks())})"
        )

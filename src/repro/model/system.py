"""The analyzed system: graph + platform + cached scheduling facts.

:class:`System` is the object every analysis consumes.  It bundles a
validated cause-effect graph with the response-time table computed once
under non-preemptive fixed-priority scheduling, and exposes the
accessors the paper's formulas read: ``T``, ``W``, ``B`` (task
parameters), ``R`` (WCRT), ``hp`` membership, and same-unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.model.chain import Chain
from repro.model.graph import CauseEffectGraph
from repro.model.task import ModelError, Task
from repro.model.validation import validate_system
from repro.sched.response_time import ResponseTimeTable, analyze_all
from repro.units import Time


@dataclass(frozen=True)
class System:
    """An immutable, validated, analyzable cause-effect system."""

    graph: CauseEffectGraph
    response_times: ResponseTimeTable

    @classmethod
    def build(
        cls,
        graph: CauseEffectGraph,
        *,
        validate: bool = True,
        preemptive: bool = False,
    ) -> "System":
        """Validate ``graph`` and pre-compute response times.

        ``preemptive=True`` analyzes under preemptive FP instead (an
        extension; the paper's Lemma 4 is specific to non-preemptive
        scheduling, and the backward-time analysis rejects preemptive
        systems unless explicitly asked to use scheduler-agnostic
        bounds).
        """
        if validate:
            report = validate_system(graph)
            report.raise_if_failed()
        table = analyze_all(graph.tasks, preemptive=preemptive)
        return cls(graph=graph, response_times=table)

    # ------------------------------------------------------------------
    # parameter accessors (paper notation)
    # ------------------------------------------------------------------

    def task(self, name: str) -> Task:
        """Look up a task of the underlying graph by name."""
        return self.graph.task(name)

    def T(self, name: str) -> Time:
        """Period ``T(tau)``."""
        return self.graph.task(name).period

    def W(self, name: str) -> Time:
        """Worst-case execution time ``W(tau)``."""
        return self.graph.task(name).wcet

    def B(self, name: str) -> Time:
        """Best-case execution time ``B(tau)``."""
        return self.graph.task(name).bcet

    def R(self, name: str) -> Time:
        """Worst-case response time ``R(tau)`` under the system scheduler."""
        return self.response_times[name]

    def same_unit(self, a: str, b: str) -> bool:
        """True when both tasks execute on the same processing unit."""
        return self.graph.task(a).ecu == self.graph.task(b).ecu

    def in_hp(self, a: str, b: str) -> bool:
        """True when ``a`` is in ``hp(b)``: same unit and higher priority."""
        ta = self.graph.task(a)
        tb = self.graph.task(b)
        if ta.ecu != tb.ecu:
            return False
        if ta.priority is None or tb.priority is None:
            raise ModelError(f"tasks {a!r}/{b!r} lack priorities")
        return ta.priority < tb.priority

    def is_source(self, name: str) -> bool:
        """True when ``name`` is a source task of the graph."""
        return self.graph.is_source(name)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def chain(self, *tasks: str) -> Chain:
        """Build and validate a chain against this system's graph."""
        chain = Chain(tuple(tasks))
        chain.validate(self.graph)
        return chain

    def with_channel_capacity(self, src: str, dst: str, capacity: int) -> "System":
        """A new system whose channel ``src->dst`` has the given capacity.

        Buffer sizes do not affect scheduling, so the response-time
        table is reused as-is.
        """
        modified = self.graph.copy()
        modified.set_channel_capacity(src, dst, capacity)
        return System(graph=modified, response_times=self.response_times)

    def with_buffer_plan(self, plan: Dict[Tuple[str, str], int]) -> "System":
        """Apply several channel capacities at once (Algorithm 1 output)."""
        modified = self.graph.copy()
        for (src, dst), capacity in plan.items():
            modified.set_channel_capacity(src, dst, capacity)
        return System(graph=modified, response_times=self.response_times)

    def describe(self) -> str:
        """Multi-line text summary for the CLI and examples."""
        lines = [
            f"system: {len(self.graph)} tasks, {len(self.graph.channels)} channels",
            f"sources: {', '.join(self.graph.sources())}",
            f"sinks:   {', '.join(self.graph.sinks())}",
        ]
        from repro.units import format_time

        for task in self.graph.tasks:
            lines.append(
                "  "
                + task.describe()
                + f" R={format_time(self.R(task.name))}"
            )
        return "\n".join(lines)

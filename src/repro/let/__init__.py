"""Logical Execution Time semantics (extension beyond the paper).

LET decouples data-flow timing from scheduling: jobs read at release
and publish at their deadline.  The analysis here retargets the
paper's disparity theorems to LET by swapping the per-chain
backward-time bounds; the simulator supports LET via
``simulate(..., semantics="let")``.
"""

from repro.let.analysis import (
    backward_bounds_let,
    bcbt_lower_let,
    disparity_bound_let,
    let_bounds_cache,
    wcbt_upper_let,
)

__all__ = [
    "backward_bounds_let",
    "bcbt_lower_let",
    "disparity_bound_let",
    "let_bounds_cache",
    "wcbt_upper_let",
]

"""Logical Execution Time semantics (extension beyond the paper).

LET decouples data-flow timing from scheduling: jobs read at release
and publish at their deadline.  The analysis here retargets the
paper's disparity theorems to LET by swapping the per-chain
backward-time bounds; the simulator supports LET via
``simulate(..., semantics="let")``, which resolves to the two-phase
fast path (LET data flow is pure release/deadline arithmetic — see
``docs/performance.md``).

For both sides of a LET study in one object, construct the session
with the matching pair::

    from repro.api import AnalysisSession
    from repro.let import backward_bounds_let

    session = AnalysisSession(
        system, bounds_strategy=backward_bounds_let, semantics="let"
    )
    bound = session.disparity(sink)                  # LET Theorem 2
    seen = session.observed_batch(sink, sims=100, duration=horizon)

``observed_batch`` then replays LET replications through the compiled
batch engine (byte-identical to sequential ``simulate`` calls, several
times faster than the general loop).  :func:`semantics_tradeoff` runs
the full paired implicit/LET study (bound + observed per semantics) on
such sessions.
"""

from repro.let.analysis import (
    backward_bounds_let,
    bcbt_lower_let,
    disparity_bound_let,
    let_bounds_cache,
    wcbt_upper_let,
)
from repro.let.sweep import (
    SEMANTICS,
    SemanticsPoint,
    TradeoffResult,
    semantics_tradeoff,
)

__all__ = [
    "SEMANTICS",
    "SemanticsPoint",
    "TradeoffResult",
    "backward_bounds_let",
    "bcbt_lower_let",
    "disparity_bound_let",
    "let_bounds_cache",
    "semantics_tradeoff",
    "wcbt_upper_let",
]

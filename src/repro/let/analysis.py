"""Backward-time bounds under Logical Execution Time (extension).

Under the LET paradigm (Kirsch & Sokolova; used by the age-latency
analysis of Kordon & Tang that the paper cites as [4]/[15]), a job
reads its inputs at its *release* and its output becomes visible at its
*deadline* (= the next release for implicit-deadline periodic tasks),
regardless of when the job actually executes inside that window.  This
decouples the data-flow timing from the scheduler entirely:

* a consumer job released at ``r`` reads the newest producer token
  *published* no later than ``r``; the producing job was released at
  the largest ``r_p`` with ``r_p + T_p <= r``, so the per-hop release
  distance lies in ``[T_p, 2 T_p)`` **exactly** — no response times,
  no execution-time jitter;
* summing over the hops:

      B_LET(pi) = sum_i T(pi^i)            (hops, i = 1..|pi|-1)
      W_LET(pi) = sum_i 2 T(pi^i)          (safe; each hop < 2 T_i)

Source tasks keep the paper's convention (they publish at release, so
the source hop contributes ``[0, T_source)`` — we charge the full
``T``-per-hop/2T-per-hop budget for uniformity and safety; the
source-specific refinement is applied below).

Because Theorems 1-3 consume only per-chain ``[B, W]`` intervals plus
task periodicity, the entire disparity machinery retargets to LET by
swapping the bounds strategy — see :func:`disparity_bound_let`.

Buffered channels compose exactly as under implicit communication:
a capacity-``n`` FIFO delays the consumed token by ``(n-1)`` producer
periods in the long term.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis_regime import max_release_gap
from repro.chains.backward import BackwardBounds, BackwardBoundsCache, buffer_shift
from repro.model.chain import Chain
from repro.model.system import System
from repro.units import Time


def wcbt_upper_let(chain: Chain, system: System) -> Time:
    """Safe WCBT bound under LET: ``2 T`` per hop (``T`` for sources).

    A source task publishes at its release (a sensor stamps and emits
    immediately), so the head hop's release distance is in
    ``[0, T_source)`` and costs at most ``T_source``; every other hop
    publishes one period after release and costs below ``2 T``.

    These bounds **survive non-periodic releases** with each hop's
    inter-release term widened to the producer's *maximum* release gap
    (:func:`~repro.analysis_regime.max_release_gap`: ``T + J`` under
    bounded jitter, ``max_gap`` for sporadic tasks).  The argument only
    uses how far apart consecutive producer publications can be — the
    consumer reads the newest token published no later than its
    release, whose producer released at most ``gap_max`` before the
    previous publication boundary — so no periodicity is needed.  For
    strictly periodic tasks this reduces to the ``T`` / ``2 T`` budgets
    above exactly.
    """
    chain.validate(system.graph)
    if len(chain) == 1:
        return 0
    total = 0
    for producer, _consumer in chain.edges():
        gap_max = max_release_gap(system.graph.task(producer))
        if system.is_source(producer):
            total += gap_max
        else:
            # Publish happens one nominal period after release, and the
            # producing release trails the consumer's read by less than
            # one maximal inter-release gap on top of that.
            total += system.T(producer) + gap_max
    return total + buffer_shift(chain, system)


def bcbt_lower_let(chain: Chain, system: System) -> Time:
    """Exact BCBT lower bound under LET: ``T`` per non-source hop.

    A non-source producer's token only becomes visible one full period
    after its release, so each such hop contributes at least ``T_p``;
    the source hop can contribute 0 (sample published exactly at the
    consumer's release).

    This lower bound holds **unchanged** under jittered and sporadic
    releases: the publish delay is exactly one nominal period after the
    (possibly shifted) release in every regime, so the read-to-sample
    distance of each non-source hop can never drop below ``T_p``.
    """
    chain.validate(system.graph)
    if len(chain) == 1:
        return 0
    total = 0
    for producer, _consumer in chain.edges():
        if not system.is_source(producer):
            total += system.T(producer)
    return total + buffer_shift(chain, system)


def backward_bounds_let(chain: Chain, system: System) -> BackwardBounds:
    """Strategy function for :class:`BackwardBoundsCache` under LET."""
    return BackwardBounds(
        chain=chain,
        wcbt=wcbt_upper_let(chain, system),
        bcbt=bcbt_lower_let(chain, system),
    )


def let_bounds_cache(system: System) -> BackwardBoundsCache:
    """A bounds cache that evaluates chains under LET semantics."""
    return BackwardBoundsCache(system, strategy=backward_bounds_let)


def disparity_bound_let(
    system: System,
    task: str,
    *,
    method: str = "forkjoin",
    truncate_suffix: bool = True,
) -> Time:
    """Worst-case time disparity of ``task`` under LET communication.

    Identical pair enumeration and theorems as the implicit-semantics
    analysis, evaluated over the LET backward-time intervals.  Useful
    for the classic LET trade-off study: LET removes all scheduling
    jitter from the data flow (often *shrinking* the disparity bound,
    since sampling windows become narrow) at the price of one extra
    period of latency per hop.
    """
    from repro.core.disparity import disparity_bound

    return disparity_bound(
        system,
        task,
        method=method,
        truncate_suffix=truncate_suffix,
        cache=let_bounds_cache(system),
    )

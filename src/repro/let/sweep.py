"""LET-versus-implicit trade-off sweeps on batched sessions (extension).

The classic LET study (``examples/let_vs_implicit.py``) compares, for
one sink task, the analytical disparity bound and the observed
disparity under both communication semantics.  Its original simulation
loop ran one :func:`repro.sim.engine.simulate` per replication; this
module replays the same study through
:meth:`repro.api.AnalysisSession.observed_batch`, so every replication
of a semantics is an offset-delta replay of one compiled scenario
(:mod:`repro.sim.batch`), byte-identical to the sequential loop under
the batch RNG discipline (per replication: execution seed first, then
one offset in ``[1, T]`` per task in graph order).

Both semantics consume *the same* derived seed stream (a fresh
``random.Random(seed)`` each), so their observed columns differ only
by data-flow semantics — the comparison is paired, not two unrelated
random draws.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time

#: The semantics compared by :func:`semantics_tradeoff`, in order.
SEMANTICS = ("implicit", "let")


@dataclass(frozen=True)
class SemanticsPoint:
    """One semantics' analytical bound next to its observed disparity.

    ``observed`` is the max disparity over the sweep's batched
    replications — the empirical lower bound under that semantics —
    and ``engine`` records which batch engine produced it
    (``"compiled"`` for the delta-replay path, ``"simulate"`` for the
    per-replication fallback).
    """

    semantics: str
    bound: Time
    observed: Time
    engine: str

    @property
    def sound(self) -> bool:
        """True when the observed disparity respects the bound."""
        return self.observed <= self.bound


@dataclass(frozen=True)
class TradeoffResult:
    """Paired implicit/LET disparity study of one task."""

    task: str
    implicit: SemanticsPoint
    let: SemanticsPoint

    @property
    def points(self) -> tuple:
        """Both points, implicit first."""
        return (self.implicit, self.let)

    @property
    def bound_delta(self) -> Time:
        """``bound(LET) - bound(implicit)``: negative when LET wins."""
        return self.let.bound - self.implicit.bound

    @property
    def observed_delta(self) -> Time:
        """``observed(LET) - observed(implicit)`` over paired seeds."""
        return self.let.observed - self.implicit.observed


def semantics_tradeoff(
    system: System,
    task: str,
    *,
    sims: int,
    duration: Time,
    warmup: Time = 0,
    seed: int = 0,
    method: str = "forkjoin",
    policy: str = "uniform",
) -> TradeoffResult:
    """Analytical bound and observed disparity under both semantics.

    For each semantics the function opens a matched
    :class:`~repro.api.AnalysisSession` (LET sessions pair
    ``backward_bounds_let`` with ``semantics="let"``), reads the
    Theorem 2 bound, and replays ``sims`` batched replications of
    ``duration`` (discarding ``warmup``).  Replications of both
    semantics draw from identical ``random.Random(seed)`` streams, so
    the two observed values are a paired comparison.

    Args:
        system: The analyzed system.
        task: Sink task whose disparity is studied.
        sims: Batched replications per semantics (must be positive).
        duration: Simulated horizon per replication.
        warmup: Transient discarded from each replication.
        seed: Seed of the per-semantics replication stream.
        method: Disparity estimator (``"forkjoin"``/``"s-diff"`` etc.).
        policy: Execution-time policy name for the replications.
    """
    from repro.api import AnalysisSession
    from repro.let.analysis import backward_bounds_let

    if sims < 1:
        raise ModelError(f"sims must be >= 1, got {sims}")
    points = {}
    for semantics in SEMANTICS:
        session = AnalysisSession(
            system,
            bounds_strategy=backward_bounds_let if semantics == "let" else None,
            semantics=semantics,
        )
        batch = session.observed_batch(
            task,
            sims=sims,
            duration=duration,
            warmup=warmup,
            rng=random.Random(seed),
            policy=policy,
        )
        points[semantics] = SemanticsPoint(
            semantics=semantics,
            bound=session.disparity(task, method=method),
            observed=batch.max_disparity,
            engine=batch.engine,
        )
    return TradeoffResult(
        task=task, implicit=points["implicit"], let=points["let"]
    )


__all__ = ["SEMANTICS", "SemanticsPoint", "TradeoffResult", "semantics_tradeoff"]

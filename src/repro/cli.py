"""Command-line interface.

Usage examples::

    python -m repro fig6 --part ab --preset smoke
    python -m repro fig6 --part cd --preset default --csv out/fig6cd.csv
    python -m repro fig6 --part ab --jobs 4 --progress --checkpoint out/ab.ckpt
    python -m repro campaign run --part ab --preset smoke --shard 0/2 \
        --out out/ab.shard0.jsonl
    python -m repro campaign merge --part ab --preset smoke \
        out/ab.shard*.jsonl --csv out/ab.csv
    python -m repro cluster run --part ab --preset smoke --shards 4 \
        --workers 2 --dir out/cluster --csv out/ab.csv --progress
    python -m repro analyze --tasks 15 --seed 7 --replications 20
    python -m repro bench --check BENCH_kernel.json
    python -m repro bench --kernel batch
    python -m repro waters

``fig6`` regenerates the paper's evaluation figures as text tables (and
optionally CSV); ``analyze`` builds one random scenario and prints the
full analysis (response times, per-chain backward bounds, P-diff /
S-diff, buffer design); ``waters`` prints the embedded WATERS 2015
benchmark tables.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.units import seconds, to_ms


def _profiled(func, args: argparse.Namespace) -> tuple:
    """Re-run ``func(args)`` under cProfile with the flag cleared.

    Work done inside the batched replication engine is reported as its
    own compile/replicate split below the cProfile table, so setup
    amortization is visible without digging through the call tree.
    """
    from repro.profile import profile_to_text
    from repro.sim.batch import PHASE_TIMES, reset_phase_times

    args.profile = False
    reset_phase_times()
    code, text = profile_to_text(func, args)
    if any(PHASE_TIMES.values()):
        parts = [
            f"compile {PHASE_TIMES['compile_s']:.3f}s",
            f"replicate {PHASE_TIMES['replicate_s']:.3f}s",
        ]
        # The columnar engine splits replication into draw/advance/
        # derive; show those phases only when it actually ran.
        for key in ("draw_s", "advance_s", "derive_s"):
            if PHASE_TIMES[key]:
                parts.append(f"{key[:-2]} {PHASE_TIMES[key]:.3f}s")
        text += "batch engine phases: " + ", ".join(parts) + "\n"
    return code, text


def _regime_note(system, task: str, args: argparse.Namespace) -> bool:
    """Print the release-regime banner for non-periodic workloads.

    Returns ``True`` when the workload is simulation-only for the
    analytical bounds (the caller should skip them); in that case the
    observed-disparity section still runs if ``--replications`` was
    given, since every simulation tier supports all release models.
    """
    from repro.analysis_regime import regime_of

    regime = regime_of(system)
    if regime.analytical:
        return False
    print(f"release regime: {regime.describe()}")
    print(
        "analytical bounds (Theorems 1-3, Lemmas 4-6) assume strictly "
        "periodic releases and are skipped; jittered/sporadic workloads "
        "are simulation-only — use --replications N to measure the "
        "observed disparity instead."
    )
    if getattr(args, "replications", None):
        print()
        _print_observed(system, task, args)
    return True


def _print_observed(system, task: str, args: argparse.Namespace) -> None:
    """Batched-replication summary for ``--replications N`` commands."""
    from repro.api import AnalysisSession

    duration = seconds(args.sim_duration)
    result = AnalysisSession(system).observed_batch(
        task,
        sims=args.replications,
        duration=duration,
        warmup=duration // 4,
        seed=args.seed or 0,
    )
    pct = result.percentiles()
    print(
        f"observed disparity ({result.sims} replications, "
        f"{args.sim_duration:g}s horizon, {result.engine} engine): "
        f"max {to_ms(result.max_disparity):.3f}ms, "
        f"p50 {to_ms(pct['p50']):.3f}ms, p90 {to_ms(pct['p90']):.3f}ms"
    )


def _config_overrides(args: argparse.Namespace) -> dict:
    """Preset overrides shared by the ``fig6`` and ``campaign`` commands."""
    overrides = {}
    if getattr(args, "duration", None) is not None:
        overrides["sim_duration"] = seconds(args.duration)
    if getattr(args, "graphs", None) is not None:
        overrides["graphs_per_point"] = args.graphs
    if getattr(args, "sims", None) is not None:
        overrides["sims_per_graph"] = args.sims
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "semantics", None) is not None:
        overrides["semantics"] = args.semantics
    return overrides


def _campaign_config(args: argparse.Namespace):
    """Resolve the ``(part, config)`` of a ``campaign`` subcommand."""
    from repro.experiments import preset_ab, preset_cd

    preset = preset_ab(args.preset) if args.part == "ab" else preset_cd(args.preset)
    return preset.scaled(**_config_overrides(args))


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.parallel.shard import ShardSpec, run_shard

    config = _campaign_config(args)
    shard = ShardSpec.parse(args.shard)
    progress = None if args.quiet else (lambda msg: print(f"  {msg}"))
    run_shard(
        args.part,
        config,
        shard,
        args.out,
        jobs=args.jobs,
        progress=progress,
    )
    return 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from repro.parallel.campaign import get_part
    from repro.parallel.shard import merge_shards

    config = _campaign_config(args)
    part = get_part(args.part)
    rows = merge_shards(part, config, args.shards)
    csv_text = part.to_csv(rows)
    if args.csv:
        path = Path(args.csv)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(csv_text)
        print(f"[campaign] merged {len(args.shards)} shard file(s) -> {path}")
    else:
        print(csv_text, end="")
    return 0


def _remote_shard_commands(args: argparse.Namespace, shards: int) -> list:
    """Ready-to-run ``repro campaign run`` lines for remote machines.

    A remote worker is nothing special: it runs one shard with the same
    part/preset/overrides and ships the JSONL back.  The coordinator's
    directory layout is reproduced so the files drop straight into a
    later ``repro campaign merge`` (or a re-run of ``cluster run``,
    which resumes from whatever records already arrived).
    """
    base = ["python", "-m", "repro", "campaign", "run",
            "--part", args.part, "--preset", args.preset]
    for flag, key in (
        ("--duration", "duration"), ("--graphs", "graphs"),
        ("--sims", "sims"), ("--seed", "seed"), ("--semantics", "semantics"),
    ):
        value = getattr(args, key, None)
        if value is not None:
            base += [flag, str(value)]
    width = len(str(shards - 1))
    return [
        " ".join(
            base
            + ["--shard", f"{index}/{shards}",
               "--out", f"{args.dir}/shard{index:0{width}d}.jsonl"]
        )
        for index in range(shards)
    ]


def _parse_chaos(specs, tear: bool) -> dict:
    """Parse repeated ``--chaos-kill SHARD:RECORDS`` flags into faults."""
    from repro.parallel.cluster import ClusterFault

    faults = {}
    for spec in specs or ():
        shard_text, _, records_text = spec.partition(":")
        try:
            shard, records = int(shard_text), int(records_text)
        except ValueError:
            raise SystemExit(
                f"--chaos-kill expects SHARD:RECORDS (e.g. 0:1), got {spec!r}"
            ) from None
        faults[shard] = ClusterFault(die_after_records=records, tear=tear)
    return faults


def _cmd_cluster_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import cluster_live_line, format_cluster_report
    from repro.parallel.campaign import get_part
    from repro.parallel.cluster import ClusterError, run_cluster

    config = _campaign_config(args)
    part = get_part(args.part)
    if args.emit_commands:
        for line in _remote_shard_commands(args, args.shards):
            print(line)
        return 0

    stream = sys.stdout
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=stream))
    live = cluster_live_line("cluster", stream, args.progress)
    faults = _parse_chaos(args.chaos_kill, args.chaos_tear)
    try:
        rows, report = run_cluster(
            args.part,
            config,
            shards=args.shards,
            workers=args.workers,
            out_dir=args.dir,
            jobs=args.jobs,
            heartbeat_timeout=args.heartbeat_timeout,
            max_retries=args.max_retries,
            backoff_s=args.backoff,
            allow_missing=args.allow_missing,
            progress=progress,
            heartbeat=live,
            faults=faults or None,
        )
    except ClusterError as exc:
        if live is not None:
            live.finish()
        print(f"[cluster] FAILED: {exc}", file=sys.stderr)
        return 1
    if live is not None:
        live.finish()

    csv_text = part.to_csv(rows)
    if args.csv:
        import json

        path = Path(args.csv)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(csv_text)
        print(f"[cluster] wrote {path}", file=stream)
        report_path = path.with_suffix(path.suffix + ".cluster.json")
        report_path.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"[cluster] wrote {report_path}", file=stream)
    else:
        print(csv_text, end="")
    if not args.quiet:
        for line in format_cluster_report(report):
            print(f"  {line}", file=stream)
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    if getattr(args, "profile", False):
        # Per-stage wall times already land in <csv>.timing.json; the
        # cProfile report goes next to it (or stdout without a CSV).
        code, text = _profiled(_cmd_fig6, args)
        if args.csv:
            path = Path(args.csv).with_suffix(".profile.txt")
            path.write_text(text, encoding="utf-8")
            print(f"[fig6] wrote {path}")
        else:
            print(text, end="")
        return code

    from repro.experiments import preset_ab, preset_cd, run_ab, run_cd

    part = args.part
    csv_path = Path(args.csv) if args.csv else None
    overrides = _config_overrides(args)

    run_args = dict(
        verbose=not args.quiet,
        jobs=args.jobs,
        show_timing=args.progress,
    )

    def checkpoint_for(suffix: str) -> Optional[str]:
        if not args.checkpoint:
            return None
        # One checkpoint file per sweep; "all" runs two sweeps.
        return f"{args.checkpoint}.{suffix}" if part == "all" else args.checkpoint

    if part in ("ab", "a", "b"):
        config = preset_ab(args.preset).scaled(**overrides)
        run_ab(
            config,
            out_csv=csv_path,
            checkpoint=checkpoint_for("ab"),
            **run_args,
        )
    if part in ("cd", "c", "d"):
        config = preset_cd(args.preset).scaled(**overrides)
        run_cd(
            config,
            out_csv=csv_path,
            checkpoint=checkpoint_for("cd"),
            **run_args,
        )
    if part == "all":
        run_ab(
            preset_ab(args.preset).scaled(**overrides),
            checkpoint=checkpoint_for("ab"),
            **run_args,
        )
        run_cd(
            preset_cd(args.preset).scaled(**overrides),
            checkpoint=checkpoint_for("cd"),
            **run_args,
        )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if getattr(args, "profile", False):
        code, text = _profiled(_cmd_analyze, args)
        print(text, end="")
        return code

    from repro.buffers import design_buffers_multi
    from repro.chains import BackwardBoundsTable
    from repro.core import worst_case_disparity
    from repro.gen import generate_random_scenario
    from repro.model.chain import enumerate_source_chains

    rng = random.Random(args.seed)
    if args.input:
        from repro.io import load_graph
        from repro.model.system import System

        graph = load_graph(args.input)
        system = System.build(graph)
        sinks = system.graph.sinks()
        sink = args.task if args.task else sinks[0]
    else:
        scenario = generate_random_scenario(args.tasks, rng)
        system = scenario.system
        sink = args.task if args.task else scenario.sink
    if args.output:
        from repro.io import save_graph

        save_graph(system.graph, args.output)
        print(f"saved workload to {args.output}")
    print(system.describe())
    print()

    if _regime_note(system, sink, args):
        return 0

    cache = BackwardBoundsTable(system)
    chains = enumerate_source_chains(system.graph, sink)
    print(f"chains into {sink!r}: {len(chains)}")
    for chain in chains:
        bounds = cache.bounds(chain)
        print(
            f"  {' -> '.join(chain.tasks)}  "
            f"WCBT={to_ms(bounds.wcbt):.3f}ms BCBT={to_ms(bounds.bcbt):.3f}ms"
        )
    print()

    for method, label in (("independent", "P-diff"), ("forkjoin", "S-diff")):
        result = worst_case_disparity(
            system, sink, method=method, cache=cache
        )
        print(f"{label}: {to_ms(result.bound):.3f}ms over {result.n_pairs} pairs")
        if result.worst_pair is not None:
            worst = result.worst_pair
            print(
                f"  worst pair: {' -> '.join(worst.lam.tasks)} vs "
                f"{' -> '.join(worst.nu.tasks)}"
            )
    design = design_buffers_multi(system, sink)
    if design.plan:
        print(
            f"buffer design: {design.plan} "
            f"({to_ms(design.bound_before):.3f}ms -> "
            f"{to_ms(design.bound_after):.3f}ms)"
        )
    else:
        print("buffer design: no improvement found")
    if args.replications:
        print()
        _print_observed(system, sink, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.gen import generate_random_scenario
    from repro.model.system import System
    from repro.report import analyze_system, render_report
    from repro.units import ms as to_ns_ms

    if args.input:
        from repro.io import load_graph

        system = System.build(load_graph(args.input))
    else:
        scenario = generate_random_scenario(args.tasks, random.Random(args.seed))
        system = scenario.system
    if _regime_note(system, system.graph.sinks()[0], args):
        return 0
    requirements = {}
    if args.requirement:
        for spec in args.requirement:
            task, _, value = spec.partition("=")
            if not value:
                raise SystemExit(
                    f"--requirement expects TASK=MILLISECONDS, got {spec!r}"
                )
            requirements[task] = to_ns_ms(float(value))
    print(render_report(analyze_system(system, requirements=requirements)))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    if getattr(args, "profile", False):
        code, text = _profiled(_cmd_diagnose, args)
        print(text, end="")
        return code

    from repro.explore import explain_disparity, render_explanation
    from repro.gen import generate_random_scenario
    from repro.model.system import System

    if args.input:
        from repro.io import load_graph

        system = System.build(load_graph(args.input))
        task = args.task if args.task else system.graph.sinks()[0]
    else:
        scenario = generate_random_scenario(args.tasks, random.Random(args.seed))
        system = scenario.system
        task = args.task if args.task else scenario.sink
    if _regime_note(system, task, args):
        return 0
    print(render_explanation(explain_disparity(system, task)))
    if args.replications:
        print()
        _print_observed(system, task, args)
    if args.optimize:
        from repro.explore import optimize_priorities

        result = optimize_priorities(system, task)
        print()
        if result.improved:
            print(
                f"priority optimization: {to_ms(result.bound_before):.3f}ms -> "
                f"{to_ms(result.bound_after):.3f}ms via swaps "
                f"{list(result.swaps_applied)}"
            )
        else:
            print("priority optimization: no improving swap found")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.profile import (
        KERNELS,
        compare_to_baseline,
        format_benchmarks,
        load_baseline,
        run_benchmarks,
    )

    kernels = KERNELS if args.kernel == "all" else (args.kernel,)
    results = run_benchmarks(quick=args.quick, kernels=kernels)
    print(format_benchmarks(results))

    if args.write:
        path = Path(args.write)
        # Keep the hand-recorded campaign numbers across re-measurements.
        existing = load_baseline(path)
        if existing and "recorded" in existing:
            results["recorded"] = existing["recorded"]
        path.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {path}")

    if args.check:
        baseline = load_baseline(Path(args.check))
        if baseline is None:
            print(f"no benchmark baseline at {args.check}; nothing to check")
            return 0
        regressions = compare_to_baseline(
            results, baseline, tolerance=args.tolerance
        )
        if not regressions:
            print(
                f"benchmark gate: OK "
                f"(within {args.tolerance:.0%} of {args.check})"
            )
            return 0
        strict = os.environ.get("BENCH_STRICT", "") not in ("", "0")
        prefix = "::error::" if strict else "::warning::"
        for message in regressions:
            print(f"{prefix}benchmark regression: {message}")
        if strict:
            return 1
        print(
            "benchmark gate: soft-fail (shared-runner timing is noisy; "
            "set BENCH_STRICT=1 to fail hard)"
        )
    return 0


def _cmd_waters(args: argparse.Namespace) -> int:
    from repro.gen.waters import (
        ACET_US,
        BCET_FACTOR_RANGE,
        PERIOD_SHARE_PERCENT,
        PERIODS_MS,
        WCET_FACTOR_RANGE,
        expected_utilization_per_task,
    )

    print(f"{'T(ms)':>6} {'share%':>7} {'ACET(us)':>9} "
          f"{'f_bc range':>14} {'f_wc range':>14}")
    for period in PERIODS_MS:
        bc = BCET_FACTOR_RANGE[period]
        wc = WCET_FACTOR_RANGE[period]
        print(
            f"{period:>6} {PERIOD_SHARE_PERCENT[period]:>7.1f} "
            f"{ACET_US[period]:>9.2f} "
            f"{f'[{bc[0]:.2f},{bc[1]:.2f}]':>14} "
            f"{f'[{wc[0]:.2f},{wc[1]:.2f}]':>14}"
        )
    print(f"expected per-task utilization: {expected_utilization_per_task():.6f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Worst-case time disparity analysis (DATE 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig6 = subparsers.add_parser("fig6", help="regenerate Fig. 6 series")
    fig6.add_argument(
        "--part",
        choices=("a", "b", "ab", "c", "d", "cd", "all"),
        default="all",
        help="which panel(s) to run (a/b share one sweep, as do c/d)",
    )
    fig6.add_argument(
        "--preset",
        choices=("paper", "default", "smoke"),
        default="default",
        help="replication scale (paper = full fidelity, slow)",
    )
    fig6.add_argument("--csv", help="write the series to this CSV file")
    fig6.add_argument("--duration", type=float, help="simulated seconds per run")
    fig6.add_argument("--graphs", type=int, help="graphs per X point")
    fig6.add_argument("--sims", type=int, help="simulations per graph")
    fig6.add_argument(
        "--replications",
        type=int,
        dest="sims",
        help="alias for --sims (replications per graph)",
    )
    fig6.add_argument("--seed", type=int, help="master seed")
    fig6.add_argument(
        "--semantics",
        choices=("implicit", "let"),
        help="communication semantics of analysis and simulation "
        "(default: implicit, the paper's model)",
    )
    fig6.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = all CPUs); results are identical "
        "for any value",
    )
    fig6.add_argument(
        "--progress",
        action="store_true",
        help="print per-point wall time, stage breakdown and worker "
        "utilization (always saved to <csv>.timing.json)",
    )
    fig6.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append completed X points to this JSONL log and resume "
        "from it on the next run with the same configuration",
    )
    fig6.add_argument("--quiet", action="store_true", help="suppress progress")
    fig6.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and write the top-30 cumulative report "
        "to <csv>.profile.txt (stdout without --csv)",
    )
    fig6.set_defaults(func=_cmd_fig6)

    analyze = subparsers.add_parser(
        "analyze", help="analyze one random scenario end to end"
    )
    analyze.add_argument("--tasks", type=int, default=12, help="number of tasks")
    analyze.add_argument("--seed", type=int, default=1, help="random seed")
    analyze.add_argument(
        "--input", help="load the workload from this JSON file instead"
    )
    analyze.add_argument(
        "--output", help="save the analyzed workload to this JSON file"
    )
    analyze.add_argument(
        "--task", help="analyzed task (default: the graph's sink)"
    )
    analyze.add_argument(
        "--replications",
        type=int,
        default=0,
        metavar="N",
        help="also report the observed disparity over N batched "
        "replications with random offsets",
    )
    analyze.add_argument(
        "--sim-duration",
        type=float,
        default=6.0,
        metavar="SECONDS",
        help="simulated horizon per replication (default 6)",
    )
    analyze.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-30 report after the analysis",
    )
    analyze.set_defaults(func=_cmd_analyze)

    report = subparsers.add_parser(
        "report", help="full analysis report of a workload"
    )
    report.add_argument("--tasks", type=int, default=12, help="number of tasks")
    report.add_argument("--seed", type=int, default=1, help="random seed")
    report.add_argument("--input", help="load the workload from this JSON file")
    report.add_argument(
        "--requirement",
        action="append",
        metavar="TASK=MS",
        help="disparity requirement to check (repeatable)",
    )
    report.set_defaults(func=_cmd_report)

    diagnose = subparsers.add_parser(
        "diagnose", help="explain a task's disparity bound and the levers"
    )
    diagnose.add_argument("--tasks", type=int, default=12, help="number of tasks")
    diagnose.add_argument("--seed", type=int, default=1, help="random seed")
    diagnose.add_argument("--input", help="load the workload from this JSON file")
    diagnose.add_argument("--task", help="analyzed task (default: the sink)")
    diagnose.add_argument(
        "--optimize",
        action="store_true",
        help="also run the priority-swap local search",
    )
    diagnose.add_argument(
        "--replications",
        type=int,
        default=0,
        metavar="N",
        help="also report the observed disparity over N batched "
        "replications with random offsets",
    )
    diagnose.add_argument(
        "--sim-duration",
        type=float,
        default=6.0,
        metavar="SECONDS",
        help="simulated horizon per replication (default 6)",
    )
    diagnose.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-30 report after the diagnosis",
    )
    diagnose.set_defaults(func=_cmd_diagnose)

    campaign = subparsers.add_parser(
        "campaign",
        help="sharded campaign tools: run one shard of a sweep on this "
        "machine, merge shard outputs into the serial-identical CSV",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _campaign_common(sub) -> None:
        sub.add_argument(
            "--part", choices=("ab", "cd"), required=True,
            help="which Fig. 6 sweep the campaign runs",
        )
        sub.add_argument(
            "--preset",
            choices=("paper", "default", "smoke"),
            default="default",
            help="replication scale (must match across shards and merge)",
        )
        sub.add_argument("--duration", type=float, help="simulated seconds per run")
        sub.add_argument("--graphs", type=int, help="graphs per X point")
        sub.add_argument("--sims", type=int, help="simulations per graph")
        sub.add_argument("--seed", type=int, help="master seed")
        sub.add_argument(
            "--semantics",
            choices=("implicit", "let"),
            help="communication semantics (default: implicit)",
        )

    crun = campaign_sub.add_parser(
        "run", help="run one shard; output doubles as the shard's resume log"
    )
    _campaign_common(crun)
    crun.add_argument(
        "--shard",
        required=True,
        metavar="INDEX/COUNT",
        help="slice of the scenario space this machine runs (e.g. 0/4); "
        "ownership is round-robin over the campaign's task ordinals",
    )
    crun.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="JSONL result file (re-running resumes from it)",
    )
    crun.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for this shard (0 = all CPUs)",
    )
    crun.add_argument("--quiet", action="store_true", help="suppress progress")
    crun.set_defaults(func=_cmd_campaign_run)

    cmerge = campaign_sub.add_parser(
        "merge",
        help="combine shard outputs into rows byte-identical to a serial run",
    )
    _campaign_common(cmerge)
    cmerge.add_argument(
        "shards", nargs="+", metavar="SHARD_JSONL",
        help="shard result files, in any order",
    )
    cmerge.add_argument(
        "--csv", metavar="PATH",
        help="write the merged CSV here (default: print to stdout)",
    )
    cmerge.set_defaults(func=_cmd_campaign_merge)

    cluster = subparsers.add_parser(
        "cluster",
        help="fault-tolerant coordinator: run a whole campaign through "
        "local shard workers with liveness watchdog and dead-shard "
        "re-issue; merged CSV is byte-identical to --jobs 1",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    clrun = cluster_sub.add_parser(
        "run",
        help="partition the campaign into shards, run them on local "
        "workers, re-issue dead shards, merge incrementally",
    )
    _campaign_common(clrun)
    clrun.add_argument(
        "--shards", type=int, default=2, metavar="M",
        help="number of scenario-space shards (default 2); shard files "
        "land in --dir and double as resume logs",
    )
    clrun.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="concurrent local worker processes (default 0 = all CPUs)",
    )
    clrun.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool size inside each worker (default 1)",
    )
    clrun.add_argument(
        "--dir", required=True, metavar="PATH",
        help="directory for shard JSONL files, worker specs and logs; "
        "re-running resumes from whatever records it already holds",
    )
    clrun.add_argument(
        "--csv", metavar="PATH",
        help="write the merged CSV here plus the cluster report to "
        "<csv>.cluster.json (default: CSV to stdout)",
    )
    clrun.add_argument(
        "--heartbeat-timeout", type=float, default=300.0, metavar="SECONDS",
        help="declare a shard dead when its file gains no new record "
        "for this long (default 300)",
    )
    clrun.add_argument(
        "--max-retries", type=int, default=2,
        help="re-issues allowed per shard after its first attempt "
        "(default 2)",
    )
    clrun.add_argument(
        "--backoff", type=float, default=1.0, metavar="SECONDS",
        help="base of the exponential re-issue backoff (default 1.0)",
    )
    clrun.add_argument(
        "--allow-missing",
        action="store_true",
        help="degrade instead of failing when a shard exhausts its "
        "retries: render partial rows and an explicit coverage report",
    )
    clrun.add_argument(
        "--progress",
        action="store_true",
        help="live cluster status line (shards done/running, graphs "
        "merged, deaths)",
    )
    clrun.add_argument("--quiet", action="store_true", help="suppress progress")
    clrun.add_argument(
        "--emit-commands",
        action="store_true",
        help="print the ready-to-run `repro campaign run` command for "
        "every shard (for remote machines) and exit",
    )
    clrun.add_argument(
        "--chaos-kill",
        action="append",
        metavar="SHARD:RECORDS",
        help="fault injection (testing/CI): SIGKILL the worker of this "
        "shard after it appended RECORDS records, first attempt only "
        "(repeatable)",
    )
    clrun.add_argument(
        "--chaos-tear",
        action="store_true",
        help="with --chaos-kill, leave a torn half-record at the kill",
    )
    clrun.set_defaults(func=_cmd_cluster_run)

    bench = subparsers.add_parser(
        "bench",
        help="measure simulator-kernel, batch-engine (implicit and LET), "
        "columnar, faulted-batch, delta-replay, structural-view and "
        "analysis throughput",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="shrink horizons for CI (metrics stay comparable)",
    )
    bench.add_argument(
        "--kernel",
        choices=(
            "sim", "batch", "let", "columnar", "fault", "delta",
            "structural", "analysis", "campaign", "cluster", "all",
        ),
        default="all",
        help="measure only one benchmark section (default: all; "
        "--check skips sections absent from the run)",
    )
    bench.add_argument(
        "--write",
        metavar="PATH",
        help="write the measurements as JSON (e.g. BENCH_kernel.json)",
    )
    bench.add_argument(
        "--check",
        metavar="PATH",
        help="compare against a committed baseline JSON; prints "
        "::warning:: lines on regression (exit 1 with BENCH_STRICT=1)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative slowdown tolerated by --check (default 0.25)",
    )
    bench.set_defaults(func=_cmd_bench)

    waters = subparsers.add_parser(
        "waters", help="print the embedded WATERS 2015 tables"
    )
    waters.set_defaults(func=_cmd_waters)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

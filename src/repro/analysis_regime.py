"""Which analytical results survive a workload's release models.

The paper's theorems assume strictly periodic releases: job ``k`` of a
task releases exactly at ``offset + k * period``.  The simulator also
supports bounded release jitter and sporadic releases
(:class:`repro.model.task.ReleaseModel`), and each analytical layer
reacts to those regimes in one of exactly two ways — **never** by
silently reporting a bound derived from an assumption the workload
violates:

* **adjusted** — the result survives with a stated, widened form.
  Response-time analysis (:mod:`repro.sched.response_time`) accounts
  for release jitter and sporadic minimum inter-arrivals directly
  (the classical Tindell/Audsley extensions), and the LET backward
  bounds (:mod:`repro.let.analysis`) widen each hop by the producer's
  maximum inter-release gap — ``T + J`` under jitter, ``max_gap``
  under sporadic — while their lower bounds hold unchanged.
* **simulation-only** — the result is refused with a structured
  :class:`RegimeError`.  The pairwise disparity theorems (Theorems
  1-3) and the implicit-communication backward bounds (Lemmas 4-6)
  exploit the fact that release-time differences are exact multiples
  of the periods involved; no safe widened form is implemented, so
  those regimes must be studied through the simulation tiers
  (``simulate`` / ``run_batch``), which support all release models
  byte-identically.

:func:`regime_of` classifies a system (or task set) once;
:class:`AnalysisRegime.require_analytical` is the gate every
periodic-only entry point calls before computing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.model.task import ModelError, Task
from repro.units import Time

__all__ = [
    "AnalysisRegime",
    "RegimeError",
    "regime_of",
    "max_release_gap",
    "min_release_gap",
]


@dataclass(frozen=True)
class AnalysisRegime:
    """Structured classification of a workload's release behavior.

    ``kind`` is ``"periodic"`` (every task strictly periodic — all
    analyses apply), ``"jitter"`` (some tasks jittered, none sporadic),
    ``"sporadic"`` (some sporadic, none jittered) or ``"mixed"``.
    ``nonperiodic`` lists ``(task name, model description)`` for every
    task that deviates, in graph order, so error messages and reports
    can name the offenders.
    """

    kind: str
    nonperiodic: Tuple[Tuple[str, str], ...] = ()

    @property
    def analytical(self) -> bool:
        """True when the paper's periodic-release theorems apply as-is."""
        return self.kind == "periodic"

    def require_analytical(self, analysis: str) -> None:
        """Raise a structured :class:`RegimeError` unless periodic.

        ``analysis`` names the refused result (e.g. ``"worst-case
        disparity bound (Theorems 1-3)"``) and is carried on the
        exception for programmatic handling.
        """
        if not self.analytical:
            raise RegimeError(self, analysis)

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.analytical:
            return "periodic release regime (all analytical bounds apply)"
        offenders = ", ".join(
            f"{name} ({model})" for name, model in self.nonperiodic
        )
        return (
            f"{self.kind} release regime — non-periodic tasks: {offenders}"
        )


class RegimeError(ModelError):
    """A periodic-only analysis was asked about a non-periodic workload.

    Carries the offending :class:`AnalysisRegime` (``.regime``) and the
    name of the refused analysis (``.analysis``) so callers — the CLI,
    reports, sweeps — can degrade gracefully instead of parsing text.
    """

    def __init__(self, regime: AnalysisRegime, analysis: str) -> None:
        self.regime = regime
        self.analysis = analysis
        super().__init__(
            f"{analysis} assumes strictly periodic releases, but this "
            f"system is in the {regime.kind!r} release regime "
            f"({regime.describe()}); this combination is "
            f"simulation-only — measure it with simulate()/run_batch(), "
            f"or restore periodic release models for analytical bounds"
        )


def _tasks_of(source) -> Tuple[Task, ...]:
    graph = getattr(source, "graph", None)
    if graph is not None:
        source = graph
    tasks = getattr(source, "tasks", source)
    return tuple(tasks)


def regime_of(source) -> AnalysisRegime:
    """Classify a :class:`System`, graph, or iterable of tasks.

    Zero-jitter "jitter" models count as periodic (they draw nothing
    and release exactly on the grid), matching
    :attr:`ReleaseModel.is_periodic`.
    """
    nonperiodic = []
    kinds = set()
    for task in _tasks_of(source):
        model = task.release_model
        if model.is_periodic:
            continue
        kinds.add(model.kind)
        nonperiodic.append((task.name, model.describe()))
    if not nonperiodic:
        return AnalysisRegime(kind="periodic")
    kind = kinds.pop() if len(kinds) == 1 else "mixed"
    return AnalysisRegime(kind=kind, nonperiodic=tuple(nonperiodic))


def max_release_gap(task: Task) -> Time:
    """Largest possible distance between consecutive releases.

    ``T`` for periodic tasks, ``T + J`` under bounded jitter (job ``k``
    at ``kT + o``, job ``k+1`` as late as ``(k+1)T + o + J``), and
    ``max_gap`` for sporadic tasks.  The adjusted LET bounds charge
    this per hop in place of the periodic ``T``.
    """
    model = task.release_model
    if model.kind == "sporadic":
        return model.max_gap
    if model.kind == "jitter":
        return task.period + model.jitter
    return task.period


def min_release_gap(task: Task) -> Time:
    """Smallest possible distance between consecutive releases.

    ``T`` for periodic tasks, ``T - J`` under bounded jitter (job ``k``
    as late as ``kT + o + J``, job ``k+1`` as early as
    ``(k+1)T + o``), and ``min_gap`` for sporadic tasks.  Response-time
    analysis uses this as the effective interference period and as the
    constrained-deadline budget ``R <= min gap``.
    """
    model = task.release_model
    if model.kind == "sporadic":
        return model.min_gap
    if model.kind == "jitter":
        return task.period - model.jitter
    return task.period

"""Buffer-sizing optimization (Section IV of the paper)."""

from repro.buffers.bounds import BufferedBounds, buffered_backward_bounds
from repro.buffers.sizing import (
    BufferDesign,
    MultiChainDesign,
    design_buffer_pair,
    design_buffers_greedy,
    design_buffers_multi,
    disparity_bound_buffered,
)

__all__ = [
    "BufferedBounds",
    "buffered_backward_bounds",
    "BufferDesign",
    "MultiChainDesign",
    "design_buffer_pair",
    "design_buffers_greedy",
    "design_buffers_multi",
    "disparity_bound_buffered",
]

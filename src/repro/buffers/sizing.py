"""Algorithm 1 and Theorem 3: buffer sizing to cut down time disparity.

Theorem 2 shows that a task's disparity with respect to two chains is
largely the relative offset between the *sampling windows* of its two
sources.  Algorithm 1 shifts the later window left by enlarging the
FIFO on the input channel of the corresponding chain's second task:
a buffer of capacity ``m + 1`` delays the consumed data by
``m T(source)`` (Lemma 6), moving that chain's window left by the same
amount.  The capacity is chosen so the two window *midpoints* come as
close as possible:

    m = floor((M_later - M_earlier) / T(source));  L = m * T(source)

and Theorem 3 certifies the improved bound: the Theorem 2 bound minus
``L`` (with the same shared-source flooring rule).

The two-chain algorithm is the paper's; :func:`design_buffers_multi`
extends it heuristically to tasks fed by more than two chains by
aligning every chain's Lemma-1 window midpoint to the leftmost one.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Tuple

from repro.chains.backward import BackwardBoundsCache
from repro.core.pairwise import (
    PairwiseResult,
    disparity_bound_forkjoin,
    offset_intervals,
    sampling_windows,
)
from repro.model.chain import Chain, decompose_pair, enumerate_source_chains, truncate_common_suffix
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time, floor_div


@dataclass(frozen=True)
class BufferDesign:
    """Output of Algorithm 1 for one pair of chains.

    Attributes:
        channel: The ``(source, second-task)`` edge whose capacity is
            enlarged; ``None`` when no shift helps (``L = 0`` and every
            capacity stays 1).
        capacity: The designed capacity of that channel.
        shift: ``L`` — the certified left-shift of the later window,
            a multiple of the shifted chain's source period.
        shifted_chain: Which input chain (``"lam"`` or ``"nu"``) was
            shifted; ``None`` when ``L = 0`` produced no change.
    """

    channel: Optional[Tuple[str, str]]
    capacity: int
    shift: Time
    shifted_chain: Optional[str]

    @property
    def plan(self) -> Dict[Tuple[str, str], int]:
        """Channel-capacity plan consumable by ``System.with_buffer_plan``."""
        if self.channel is None or self.capacity == 1:
            return {}
        return {self.channel: self.capacity}


def design_buffer_pair(
    lam: Chain,
    nu: Chain,
    cache: BackwardBoundsCache,
    *,
    truncate_suffix: bool = True,
) -> BufferDesign:
    """Algorithm 1: choose a head-channel capacity for one chain pair.

    Lines 2–3 compute the Theorem 2 offset intervals, lines 4–6 the two
    sampling windows relative to the ``o_1`` job of ``lam``, and lines
    7–12 shift the window with the larger midpoint left by the largest
    multiple of its source period not exceeding the midpoint gap.
    """
    system = cache.system
    work_lam, work_nu = lam, nu
    if truncate_suffix:
        work_lam, work_nu, _ = truncate_common_suffix(lam, nu)
        if len(work_lam) == 1 and len(work_nu) == 1:
            return BufferDesign(channel=None, capacity=1, shift=0, shifted_chain=None)

    decomposition = decompose_pair(work_lam, work_nu, system.graph)
    offsets = offset_intervals(decomposition, cache)
    window_lam, window_nu = sampling_windows(decomposition, offsets, cache)

    # Compare midpoints exactly: M = (A + B) / 2, so compare A + B.
    m_lam_x2 = window_lam.midpoint_x2
    m_nu_x2 = window_nu.midpoint_x2
    if m_lam_x2 >= m_nu_x2:
        shifted_name = "lam"
        shifted = work_lam
        gap_x2 = m_lam_x2 - m_nu_x2
    else:
        shifted_name = "nu"
        shifted = work_nu
        gap_x2 = m_nu_x2 - m_lam_x2

    period = system.T(shifted.head)
    m = floor_div(gap_x2, 2 * period)  # floor((M_hi - M_lo) / T)
    if m == 0 or len(shifted) < 2:
        return BufferDesign(channel=None, capacity=1, shift=0, shifted_chain=None)
    return BufferDesign(
        channel=(shifted.head, shifted[1]),
        capacity=m + 1,
        shift=m * period,
        shifted_chain=shifted_name,
    )


def disparity_bound_buffered(
    lam: Chain,
    nu: Chain,
    cache: BackwardBoundsCache,
    *,
    truncate_suffix: bool = True,
) -> Tuple[PairwiseResult, BufferDesign]:
    """Theorem 3: the Theorem 2 bound improved by Algorithm 1's shift.

    Returns the buffered pairwise result (method ``"S-diff-B"``)
    together with the design that realizes it.  The inputs must be
    chains of a *base* system (all capacities 1); apply the returned
    design's plan to obtain the deployed system the bound describes.
    """
    base = disparity_bound_forkjoin(lam, nu, cache, truncate_suffix=truncate_suffix)
    design = design_buffer_pair(lam, nu, cache, truncate_suffix=truncate_suffix)
    bound = base.bound - design.shift
    if bound < 0:
        raise ModelError(
            f"Theorem 3 produced a negative bound ({bound}) for pair "
            f"{lam} / {nu}; this indicates an inconsistency"
        )
    result = PairwiseResult(
        lam=lam,
        nu=nu,
        bound=bound,
        method="S-diff-B",
        analyzed_task=base.analyzed_task,
        shared_source=base.shared_source,
        decomposition=base.decomposition,
        offsets=base.offsets,
        window_lam=base.window_lam,
        window_nu=base.window_nu,
    )
    return result, design


@dataclass(frozen=True)
class MultiChainDesign:
    """Result of a multi-chain buffer design heuristic.

    ``observed_before`` / ``observed_after`` are the max observed
    disparities of the undesigned and designed systems over paired
    batched replications (same seeds and offset draws, the designed
    side a ``capacities`` delta view of the base compiled scenario);
    ``None`` unless requested via ``observed_sims``.
    """

    task: str
    plan: Dict[Tuple[str, str], int]
    bound_before: Time
    bound_after: Time
    observed_before: Optional[Time] = None
    observed_after: Optional[Time] = None


def _observed_pair(
    system: System,
    plan: Dict[Tuple[str, str], int],
    task: str,
    sims: int,
    duration: Optional[Time],
    warmup: Time,
    seed: int,
) -> Tuple[Time, Time]:
    """Paired observed disparities of the base and buffered systems.

    Capacity edits are the cheapest structural delta: the designed
    side shares the base's release streams *and* its schedule memo
    (buffer sizes never affect scheduling), so the paired replications
    compute every schedule once and re-resolve only the data flow.
    """
    if duration is None or duration <= 0:
        raise ModelError(
            "observed_sims > 0 requires a positive observed_duration"
        )
    import random

    from repro.sim.batch import compile_scenario, run_batch

    base = compile_scenario(system, task)
    before = run_batch(
        system,
        task,
        sims=sims,
        duration=duration,
        warmup=warmup,
        rng=random.Random(seed),
        compiled=base,
    ).max_disparity
    buffered = system.with_buffer_plan(plan)
    after_compiled = (
        base.edit(capacities=dict(plan)).compiled if plan else base
    )
    after = run_batch(
        buffered,
        task,
        sims=sims,
        duration=duration,
        warmup=warmup,
        rng=random.Random(seed),
        compiled=after_compiled,
    ).max_disparity
    return before, after


def design_buffers_greedy(
    system: System,
    task: str,
    *,
    max_iterations: int = 8,
    method: str = "forkjoin",
    observed_sims: int = 0,
    observed_duration: Optional[Time] = None,
    observed_warmup: Time = 0,
    observed_seed: int = 0,
) -> MultiChainDesign:
    """Iterative pairwise buffer design: fix the binding pair, repeat.

    Each round runs the task-level analysis, applies Algorithm 1 to the
    *binding* pair (the pair attaining the maximum), and keeps the new
    capacities only if the re-analyzed task bound improves — other
    pairs sharing the buffered channel shift too, so re-analysis is the
    arbiter.  Monotone by construction; terminates when a round stops
    helping or after ``max_iterations``.

    Compared to :func:`design_buffers_multi` (one-shot window
    alignment), the greedy loop handles interacting chains better at
    the cost of one full analysis per round.  With ``observed_sims >
    0`` the final plan is additionally measured by paired batched
    replications against the undesigned system, the designed side a
    ``capacities`` delta view of the base compiled scenario (shared
    schedules — see :func:`_observed_pair`).
    """
    from repro.core.disparity import worst_case_disparity

    if max_iterations < 1:
        raise ModelError(f"max_iterations must be >= 1, got {max_iterations}")
    current = system
    plan: Dict[Tuple[str, str], int] = {}
    bound_before = worst_case_disparity(system, task, method=method).bound
    best = bound_before

    for _iteration in range(max_iterations):
        cache = BackwardBoundsCache(current)
        result = worst_case_disparity(current, task, method=method, cache=cache)
        if result.worst_pair is None:
            break
        design = design_buffer_pair(
            result.worst_pair.lam, result.worst_pair.nu, cache
        )
        if design.channel is None:
            break
        # Compose with any capacity this channel already received.
        existing = plan.get(design.channel, 1)
        candidate_plan = dict(plan)
        candidate_plan[design.channel] = existing + design.capacity - 1
        candidate = system.with_buffer_plan(candidate_plan)
        candidate_bound = worst_case_disparity(
            candidate, task, method=method
        ).bound
        if candidate_bound >= best:
            break
        plan, current, best = candidate_plan, candidate, candidate_bound
    observed_before = observed_after = None
    if observed_sims > 0:
        observed_before, observed_after = _observed_pair(
            system,
            plan,
            task,
            observed_sims,
            observed_duration,
            observed_warmup,
            observed_seed,
        )
    return MultiChainDesign(
        task=task,
        plan=plan,
        bound_before=bound_before,
        bound_after=best,
        observed_before=observed_before,
        observed_after=observed_after,
    )


def design_buffers_multi(
    system: System,
    task: str,
    *,
    method: str = "forkjoin",
) -> MultiChainDesign:
    """Align the sampling windows of *every* chain into ``task``.

    Extension beyond the paper (which designs for two chains): compute
    each chain's Lemma-1 window ``[-W(pi), -B(pi)]`` relative to the
    analyzed job, find the leftmost midpoint, and enlarge each other
    chain's head channel so its midpoint moves as close as possible.
    Chains sharing a head channel are shifted together using the
    smallest requested capacity (a larger one would over-shift the
    other chain, and any common capacity shifts all of them safely —
    the resulting system is re-analyzed from scratch for the certified
    bound).
    """
    from repro.core.disparity import disparity_bound

    cache = BackwardBoundsCache(system)
    chains = enumerate_source_chains(system.graph, task)
    bound_before = disparity_bound(system, task, method=method, cache=cache)
    if len(chains) < 2:
        return MultiChainDesign(task=task, plan={}, bound_before=bound_before,
                                bound_after=bound_before)

    windows = {
        chain: (-cache.wcbt(chain), -cache.bcbt(chain)) for chain in chains
    }
    # Leftmost midpoint is the alignment target.
    target_x2 = min(lo + hi for lo, hi in windows.values())

    requested: Dict[Tuple[str, str], int] = {}
    for chain, (lo, hi) in windows.items():
        if len(chain) < 2:
            continue
        gap_x2 = (lo + hi) - target_x2
        period = system.T(chain.head)
        m = floor_div(gap_x2, 2 * period)
        if m <= 0:
            continue
        key = (chain.head, chain[1])
        capacity = m + 1
        if key in requested:
            requested[key] = min(requested[key], capacity)
        else:
            requested[key] = capacity

    if not requested:
        return MultiChainDesign(task=task, plan={}, bound_before=bound_before,
                                bound_after=bound_before)
    buffered = system.with_buffer_plan(requested)
    bound_after = disparity_bound(buffered, task, method=method)
    if bound_after >= bound_before:
        # The heuristic did not help (possible with interacting chains);
        # keep the base design.
        return MultiChainDesign(task=task, plan={}, bound_before=bound_before,
                                bound_after=bound_before)
    return MultiChainDesign(
        task=task, plan=requested, bound_before=bound_before, bound_after=bound_after
    )

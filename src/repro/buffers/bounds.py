"""Lemma 6: backward-time bounds of a chain with a buffered head channel.

When the input channel of ``pi^2`` is a FIFO of capacity ``n >= 1``, in
the long term (all buffers full) the reader always peeks the oldest of
the ``n`` stored tokens, whose timestamp is ``(n-1) T(pi^1)`` earlier
than the newest arrival.  Both backward-time bounds therefore shift
right by that amount:

    W(pi)^n = W(pi) + (n-1) T(pi^1)
    B(pi)^n = B(pi) + (n-1) T(pi^1)

These helpers express the shift explicitly for a *hypothetical*
capacity without mutating the system — Algorithm 1 uses them to predict
the effect of a candidate design.  Once a design is applied
(``System.with_channel_capacity``), the regular bounds of
:mod:`repro.chains.backward` account for the capacities directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chains.backward import bcbt_lower, wcbt_upper
from repro.model.chain import Chain
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time


@dataclass(frozen=True)
class BufferedBounds:
    """``[B(pi)^n, W(pi)^n]`` for a head-channel capacity ``n``."""

    chain: Chain
    capacity: int
    wcbt: Time
    bcbt: Time


def buffered_backward_bounds(
    chain: Chain, system: System, capacity: int
) -> BufferedBounds:
    """Lemma 6 for a hypothetical head-channel capacity.

    The chain's *current* head-channel capacity in ``system`` must be 1
    (the base model); the returned bounds describe what the analysis
    would yield if it were ``capacity``.
    """
    from repro.analysis_regime import regime_of

    regime_of(system).require_analytical("buffered backward bounds (Lemma 6)")
    if capacity < 1:
        raise ModelError(f"capacity must be >= 1, got {capacity}")
    if len(chain) < 2:
        raise ModelError(f"chain {chain} has no head channel to buffer")
    current = system.graph.channel(chain.head, chain[1]).capacity
    if current != 1:
        raise ModelError(
            f"head channel of {chain} already has capacity {current}; "
            f"apply designs to a base (capacity-1) system"
        )
    shift = (capacity - 1) * system.T(chain.head)
    return BufferedBounds(
        chain=chain,
        capacity=capacity,
        wcbt=wcbt_upper(chain, system) + shift,
        bcbt=bcbt_lower(chain, system) + shift,
    )

"""repro — worst-case time disparity analysis for cause-effect chains.

A production-quality reproduction of *"Analysis and Optimization of
Worst-Case Time Disparity in Cause-Effect Chains"* (Jiang, Luo, Guan,
Dong, Liu, Yi — DATE 2023): system model, non-preemptive response-time
analysis, backward-time bounds, the P-diff / S-diff disparity theorems,
the buffer-sizing optimization, a discrete-event simulator with token
provenance, the WATERS 2015 workload generator, and the Fig. 6
evaluation harness.

Quickstart::

    import random
    from repro import AnalysisSession, generate_random_scenario

    scenario = generate_random_scenario(12, random.Random(7))
    session = AnalysisSession(scenario.system)
    s_diff = session.disparity(scenario.sink)                  # Theorem 2
    p_diff = session.disparity(scenario.sink, method="p-diff") # Theorem 1
"""

from repro.buffers import (
    BufferDesign,
    MultiChainDesign,
    buffered_backward_bounds,
    design_buffer_pair,
    design_buffers_multi,
    disparity_bound_buffered,
)
from repro.chains import (
    BackwardBounds,
    BackwardBoundsCache,
    backward_bounds,
    bcbt_lower,
    max_data_age,
    max_reaction_time,
    wcbt_upper,
)
from repro.api import AnalysisSession
from repro.core import (
    METHOD_ALIASES,
    PairwiseResult,
    TaskDisparityResult,
    disparity_bound,
    disparity_bound_forkjoin,
    disparity_bound_independent,
    normalize_method,
    worst_case_disparity,
)
from repro.gen import (
    WatersSampler,
    generate_merged_pair_scenario,
    generate_random_scenario,
    merged_chain_pair,
    random_cause_effect_graph,
)
from repro.model import (
    CauseEffectGraph,
    Chain,
    Channel,
    ModelError,
    Platform,
    System,
    Task,
    message_task,
    source_task,
)
from repro.exact import (
    maximize_disparity_offsets,
    steady_state_disparity,
)
from repro.explore import (
    buffer_capacity_sweep,
    disparity_margins,
    period_sensitivity,
)
from repro.io import load_graph, save_graph
from repro.let import disparity_bound_let
from repro.sim import (
    BackwardTimeMonitor,
    DisparityMonitor,
    Simulator,
    randomize_offsets,
    simulate,
)
from repro.units import Time, format_time, ms, ns, seconds, to_ms, to_us, us

__version__ = "1.2.0"

# The PR-1 deprecation shims (``all_sink_disparities`` /
# ``check_disparity_requirement`` re-exported with a warning) are gone
# after two releases of warning: use ``AnalysisSession.all_sinks()`` /
# ``AnalysisSession.check_requirement()``, or import the functional
# forms from :mod:`repro.core.disparity` directly.

__all__ = [
    "AnalysisSession",
    "METHOD_ALIASES",
    "normalize_method",
    "BufferDesign",
    "MultiChainDesign",
    "buffered_backward_bounds",
    "design_buffer_pair",
    "design_buffers_multi",
    "disparity_bound_buffered",
    "BackwardBounds",
    "BackwardBoundsCache",
    "backward_bounds",
    "bcbt_lower",
    "max_data_age",
    "max_reaction_time",
    "wcbt_upper",
    "PairwiseResult",
    "TaskDisparityResult",
    "disparity_bound",
    "disparity_bound_forkjoin",
    "disparity_bound_independent",
    "worst_case_disparity",
    "WatersSampler",
    "generate_merged_pair_scenario",
    "generate_random_scenario",
    "merged_chain_pair",
    "random_cause_effect_graph",
    "CauseEffectGraph",
    "Chain",
    "Channel",
    "ModelError",
    "Platform",
    "System",
    "Task",
    "message_task",
    "source_task",
    "maximize_disparity_offsets",
    "steady_state_disparity",
    "buffer_capacity_sweep",
    "disparity_margins",
    "period_sensitivity",
    "load_graph",
    "save_graph",
    "disparity_bound_let",
    "BackwardTimeMonitor",
    "DisparityMonitor",
    "Simulator",
    "randomize_offsets",
    "simulate",
    "Time",
    "format_time",
    "ms",
    "ns",
    "seconds",
    "to_ms",
    "to_us",
    "us",
    "__version__",
]

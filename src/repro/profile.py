"""Performance observability: micro-benchmarks and profiling helpers.

This module is the measurement side of the single-worker hot-path
optimization work:

* :func:`profile_to_text` wraps any callable in :mod:`cProfile` and
  renders the top-N cumulative entries — the CLI's ``--profile`` flag
  on ``fig6``/``analyze``/``diagnose`` is a thin shim over it.
* :func:`bench_sim_kernel` measures raw simulator throughput
  (completed jobs per wall-clock second) on a fixed WATERS-style
  scenario — the quantity the two-phase fast path optimizes.
* :func:`bench_batch_kernel` measures the batched replication engine
  (:mod:`repro.sim.batch`) against the same replications run as
  independent simulations — a paired, in-process comparison whose
  speedup ratio the regression gate tracks.  A third arm pins the
  per-replication compiled replay (``engine="compiled"``) so the
  columnar engine's gain over it is reported separately
  (``columnar_speedup``).
* :func:`bench_let_kernel` is the same paired comparison under LET
  semantics, with the sequential side pinned to the general loop (the
  pre-fast-path LET baseline) and the same third replay arm.
* :func:`bench_columnar_kernel` is the dedicated columnar-vs-replay
  pair: the same replications through the columnar lockstep engine
  and through the per-replication compiled loop, asserted identical;
  its ratio is the regression-gate metric for the columnar tier.
* :func:`bench_fault_kernel` is the paired comparison for faulted
  runs: a dropout plan compiled to release masks and replayed through
  the batched tiers versus the same replications as independent
  general-loop simulations (the pre-mask fault path), disparities
  asserted identical; its ratio gates the faulted fast path.
* :func:`bench_delta_kernel` measures delta compilation: many offset
  candidates on one system, evaluated as cheap
  :meth:`~repro.sim.batch.CompiledScenario.with_offsets` views of one
  compiled scenario versus a fresh compile per candidate (the
  offset-sweep cost model before delta compilation).
* :func:`bench_campaign_kernel` measures the streaming campaign engine
  (:func:`repro.parallel.campaign.run_campaign` — single adaptive map,
  bounded accumulators, append-only JSONL checkpoint) against a
  faithful reproduction of the legacy per-point loop (per-point task
  filter, per-point barriers, whole-document checkpoint rewrite) on a
  points-heavy synthetic campaign, rows asserted identical; the entry
  also records the streaming arm's measured peak result residency next
  to the legacy arm's whole-campaign row dict.
* :func:`bench_cluster_kernel` measures the cluster coordinator
  (:func:`repro.parallel.cluster.run_cluster` — worker subprocesses,
  shard-file liveness polling, incremental merge) against a plain
  single-machine process pool on the same campaign, rows asserted
  identical; the entry reports the coordinator's overhead ratio — the
  measured price of fault tolerance.
* :func:`bench_analysis_scaling` measures the *per-chain* cost of the
  backward-bounds analysis on diamond-ladder graphs whose chain count
  doubles per rung; the DAG-shared prefix DP
  (:class:`repro.chains.backward.BackwardBoundsTable`) makes that cost
  *fall* as chains multiply, which the benchmark asserts.
* :func:`run_benchmarks` bundles the sections into the JSON document committed
  as ``BENCH_kernel.json``; :func:`compare_to_baseline` implements the
  CI regression gate against that file (throughput metrics only, so
  the comparison survives horizon changes between quick and full
  runs — though not machine changes, hence the soft-fail default).

Wall-clock numbers use :func:`time.perf_counter`; everything here is
deliberately dependency-free (stdlib only).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Relative slowdown tolerated by the regression gate before it trips.
DEFAULT_TOLERANCE = 0.25


# ----------------------------------------------------------------------
# profiling
# ----------------------------------------------------------------------

def profile_to_text(
    func: Callable[..., Any],
    *args: Any,
    top: int = 30,
    **kwargs: Any,
) -> Tuple[Any, str]:
    """Run ``func`` under cProfile; return ``(result, report_text)``.

    The report lists the ``top`` entries by cumulative time, which is
    the view that answers "where does the campaign actually spend its
    wall clock" (the hot event loop shows up as one fat line).
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(func, *args, **kwargs)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return result, buffer.getvalue()


# ----------------------------------------------------------------------
# simulator-kernel throughput
# ----------------------------------------------------------------------

def bench_sim_kernel(
    *,
    n_tasks: int = 30,
    sims: int = 6,
    duration_s: float = 2.0,
    seed: int = 2023,
) -> Dict[str, Any]:
    """Completed jobs per second of wall clock on one fixed scenario.

    Generates a WATERS-style random scenario, then runs ``sims``
    simulations (distinct seeds, disparity monitored at the sink — the
    Fig. 6 configuration) and reports aggregate throughput.
    """
    from repro.gen import generate_random_scenario
    from repro.model.system import System
    from repro.sim.engine import Simulator, randomize_offsets
    from repro.sim.metrics import DisparityMonitor
    from repro.units import seconds

    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    graph = randomize_offsets(scenario.system.graph, rng)
    system = System(graph=graph, response_times=scenario.system.response_times)
    duration = seconds(duration_s)

    jobs = 0
    start = time.perf_counter()
    for index in range(sims):
        monitor = DisparityMonitor([scenario.sink], warmup=duration // 4)
        result = Simulator(
            system,
            duration,
            seed=seed + index,
            observers=[monitor],
        ).run()
        jobs += result.stats.jobs_completed
    wall = time.perf_counter() - start
    return {
        "n_tasks": n_tasks,
        "sims": sims,
        "duration_s": duration_s,
        "jobs": jobs,
        "wall_s": round(wall, 4),
        "jobs_per_s": round(jobs / wall, 1) if wall else 0.0,
        "sims_per_s": round(sims / wall, 2) if wall else 0.0,
    }


# ----------------------------------------------------------------------
# batched replications vs per-run setup
# ----------------------------------------------------------------------

def bench_batch_kernel(
    *,
    n_tasks: int = 10,
    sims: int = 20,
    duration_s: float = 6.0,
    seed: int = 2023,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Compiled batch engine vs N sequential simulator runs, paired.

    Runs the same ``sims`` replications twice from identical generator
    states — once as independent ``simulate()`` calls (per-run scenario
    setup, the pre-batch Fig. 6 path) and once through
    :func:`repro.sim.batch.run_batch` (compile once, replicate many) —
    asserts the per-replication disparities match, and reports both
    (min-of-``repeats``) walls plus their ratio.  The defaults mirror
    one graph of the default Fig. 6 (a)/(b) campaign (20 replications
    of a 6 s horizon).  Measuring the pair back-to-back in one process
    keeps the speedup honest on machines with drifting load; the ratio
    is also what the regression gate checks, since it survives machine
    changes where absolute throughput does not.

    A third arm replays the same replications through the
    per-replication compiled loop (``engine="compiled"``), isolating
    the columnar lockstep engine's gain over it as
    ``columnar_speedup`` — the ratio the columnar tier must keep ≥ 1
    to pay for itself (and which the ``columnar`` kernel gates).
    """
    from repro.api import AnalysisSession
    from repro.gen import generate_random_scenario
    from repro.sim.batch import run_batch
    from repro.sim.metrics import DisparityMonitor
    from repro.units import seconds

    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    system, sink = scenario.system, scenario.sink
    duration = seconds(duration_s)
    warmup = duration // 4
    state = rng.getstate()
    session = AnalysisSession(system)

    sequential_s: Optional[float] = None
    replay_s: Optional[float] = None
    batched_s: Optional[float] = None
    engine = ""
    for _ in range(max(1, repeats)):
        rng.setstate(state)
        start = time.perf_counter()
        sequential: List[int] = []
        for _ in range(sims):
            monitor = DisparityMonitor([sink], warmup=warmup)
            session.simulate(
                duration,
                seed=rng.randrange(2**31),
                observers=[monitor],
                offsets_rng=rng,
            )
            sequential.append(monitor.disparity(sink))
        elapsed = time.perf_counter() - start
        sequential_s = elapsed if sequential_s is None else min(
            sequential_s, elapsed
        )

        rng.setstate(state)
        start = time.perf_counter()
        replayed = run_batch(
            system, sink, sims=sims, duration=duration, warmup=warmup,
            rng=rng, engine="compiled",
        )
        elapsed = time.perf_counter() - start
        replay_s = elapsed if replay_s is None else min(replay_s, elapsed)
        if list(replayed.disparities) != sequential:
            raise AssertionError(
                "compiled replay diverged from sequential runs"
            )

        rng.setstate(state)
        start = time.perf_counter()
        result = run_batch(
            system, sink, sims=sims, duration=duration, warmup=warmup,
            rng=rng,
        )
        elapsed = time.perf_counter() - start
        batched_s = elapsed if batched_s is None else min(batched_s, elapsed)
        engine = result.engine
        if list(result.disparities) != sequential:
            raise AssertionError(
                "batched replications diverged from sequential runs"
            )
    return {
        "n_tasks": n_tasks,
        "sims": sims,
        "duration_s": duration_s,
        "engine": engine,
        "sequential_s": round(sequential_s, 4),
        "replay_s": round(replay_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(sequential_s / batched_s, 2) if batched_s else 0.0,
        "columnar_speedup": round(
            replay_s / batched_s, 2
        ) if batched_s else 0.0,
        "sims_per_s": round(sims / batched_s, 2) if batched_s else 0.0,
    }


def bench_let_kernel(
    *,
    n_tasks: int = 10,
    sims: int = 20,
    duration_s: float = 6.0,
    seed: int = 2023,
    repeats: int = 3,
) -> Dict[str, Any]:
    """LET compiled batch engine vs N general-loop runs, paired.

    The LET twin of :func:`bench_batch_kernel`: the sequential side
    replays ``sims`` replications as independent
    ``simulate(semantics="let", loop="general")`` calls — the only LET
    path that existed before the fast-path/batch work reached LET — and
    the batched side routes the same replications through
    ``run_batch`` with ``semantics="let"`` (compile once per batch,
    replicate many).  Both
    start from identical generator states, the per-replication
    disparities are asserted equal, and the (min-of-``repeats``) walls
    plus their ratio are reported; the ratio feeds the regression gate.
    As in :func:`bench_batch_kernel`, a third arm pins the
    per-replication compiled replay (``engine="compiled"``) and
    ``columnar_speedup`` records the columnar engine's gain over it
    under LET semantics.
    """
    from repro.gen import generate_random_scenario
    from repro.model.system import System
    from repro.sim.batch import run_batch
    from repro.sim.engine import Simulator, randomize_offsets
    from repro.sim.metrics import DisparityMonitor
    from repro.units import seconds

    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    system, sink = scenario.system, scenario.sink
    duration = seconds(duration_s)
    warmup = duration // 4
    state = rng.getstate()

    sequential_s: Optional[float] = None
    replay_s: Optional[float] = None
    batched_s: Optional[float] = None
    engine = ""
    for _ in range(max(1, repeats)):
        rng.setstate(state)
        start = time.perf_counter()
        sequential: List[int] = []
        for _ in range(sims):
            monitor = DisparityMonitor([sink], warmup=warmup)
            run_seed = rng.randrange(2**31)
            run_system = System(
                graph=randomize_offsets(system.graph, rng),
                response_times=system.response_times,
            )
            Simulator(
                run_system,
                duration,
                seed=run_seed,
                observers=[monitor],
                semantics="let",
                loop="general",
            ).run()
            sequential.append(monitor.disparity(sink))
        elapsed = time.perf_counter() - start
        sequential_s = elapsed if sequential_s is None else min(
            sequential_s, elapsed
        )

        rng.setstate(state)
        start = time.perf_counter()
        replayed = run_batch(
            system, sink, sims=sims, duration=duration, warmup=warmup,
            rng=rng, semantics="let", engine="compiled",
        )
        elapsed = time.perf_counter() - start
        replay_s = elapsed if replay_s is None else min(replay_s, elapsed)
        if list(replayed.disparities) != sequential:
            raise AssertionError(
                "LET compiled replay diverged from general-loop runs"
            )

        rng.setstate(state)
        start = time.perf_counter()
        result = run_batch(
            system, sink, sims=sims, duration=duration, warmup=warmup,
            rng=rng, semantics="let",
        )
        elapsed = time.perf_counter() - start
        batched_s = elapsed if batched_s is None else min(batched_s, elapsed)
        engine = result.engine
        if list(result.disparities) != sequential:
            raise AssertionError(
                "LET batched replications diverged from general-loop runs"
            )
    return {
        "n_tasks": n_tasks,
        "sims": sims,
        "duration_s": duration_s,
        "engine": engine,
        "sequential_s": round(sequential_s, 4),
        "replay_s": round(replay_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(sequential_s / batched_s, 2) if batched_s else 0.0,
        "columnar_speedup": round(
            replay_s / batched_s, 2
        ) if batched_s else 0.0,
        "sims_per_s": round(sims / batched_s, 2) if batched_s else 0.0,
    }


def bench_columnar_kernel(
    *,
    n_tasks: int = 10,
    sims: int = 40,
    duration_s: float = 6.0,
    seed: int = 2023,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Columnar lockstep engine vs per-replication compiled replay, paired.

    The dedicated pairing of the two batched tiers: the same ``sims``
    replications run once through the per-replication compiled loop
    (``engine="compiled"``, one Python event loop per replication) and
    once through the columnar engine (``engine="auto"``, which must
    select it here — the result's engine label is reported), from
    identical generator states, with the per-replication disparities
    asserted equal.  Each arm calls :func:`repro.sim.batch.run_batch`
    afresh, so both pay one compile per batch and the ratio isolates
    the replay cost — Python event loop per sim vs one C advance plus
    vectorized derivation across all sims.  The (min-of-``repeats``)
    walls, their ratio (the regression-gate metric for the columnar
    tier) and the columnar phase split (draw/advance/derive seconds,
    from :data:`repro.sim.batch.PHASE_TIMES`) are reported.  ``sims``
    doubles :func:`bench_batch_kernel`'s default to exercise a wider
    batch — the shape the columnar engine exists for — with the
    per-batch compile cost amortized equally in both arms.
    """
    import repro.sim.batch as batch_mod
    from repro.gen import generate_random_scenario
    from repro.sim.batch import run_batch
    from repro.units import seconds

    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    system, sink = scenario.system, scenario.sink
    duration = seconds(duration_s)
    warmup = duration // 4
    state = rng.getstate()

    replay_s: Optional[float] = None
    columnar_s: Optional[float] = None
    engine = ""
    phases = {"draw_s": 0.0, "advance_s": 0.0, "derive_s": 0.0}
    for _ in range(max(1, repeats)):
        rng.setstate(state)
        start = time.perf_counter()
        replayed = run_batch(
            system, sink, sims=sims, duration=duration, warmup=warmup,
            rng=rng, engine="compiled",
        )
        elapsed = time.perf_counter() - start
        replay_s = elapsed if replay_s is None else min(replay_s, elapsed)

        rng.setstate(state)
        before = {key: batch_mod.PHASE_TIMES[key] for key in phases}
        start = time.perf_counter()
        result = run_batch(
            system, sink, sims=sims, duration=duration, warmup=warmup,
            rng=rng,
        )
        elapsed = time.perf_counter() - start
        if columnar_s is None or elapsed < columnar_s:
            columnar_s = elapsed
            phases = {
                key: round(batch_mod.PHASE_TIMES[key] - before[key], 4)
                for key in phases
            }
        engine = result.engine
        if result.disparities != replayed.disparities:
            raise AssertionError(
                "columnar replications diverged from compiled replay"
            )
    return {
        "n_tasks": n_tasks,
        "sims": sims,
        "duration_s": duration_s,
        "engine": engine,
        "replay_s": round(replay_s, 4),
        "columnar_s": round(columnar_s, 4),
        "speedup": round(replay_s / columnar_s, 2) if columnar_s else 0.0,
        "sims_per_s": round(sims / columnar_s, 2) if columnar_s else 0.0,
        "phases": phases,
    }


def bench_fault_kernel(
    *,
    n_tasks: int = 10,
    sims: int = 20,
    duration_s: float = 6.0,
    seed: int = 2023,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Faulted batched replay vs per-replication general loop, paired.

    Fault plans used to force the general event loop — the one
    workload that stressed the provenance machinery never benefited
    from the batched tiers.  With dropouts compiled to boolean release
    masks over the pre-drawn release tables, faulted runs replay
    through the fastest eligible batched tier.  This kernel measures
    that gain on a periodic scenario with a mid-horizon dropout of one
    source: the sequential arm runs ``sims`` replications as
    independent ``simulate(loop="general")`` calls (the pre-mask fault
    path), the batched arm routes the same replications — same
    generator state, same fault plan — through
    :func:`repro.sim.batch.run_batch`; per-replication disparities are
    asserted equal and the (min-of-``repeats``) walls plus their ratio
    (the regression-gate metric) are reported.
    """
    from repro.gen import generate_random_scenario
    from repro.model.system import System
    from repro.sim.batch import run_batch
    from repro.sim.engine import Simulator, randomize_offsets
    from repro.sim.faults import FaultPlan
    from repro.sim.metrics import DisparityMonitor
    from repro.units import seconds

    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    system, sink = scenario.system, scenario.sink
    duration = seconds(duration_s)
    warmup = duration // 4
    victim = sorted(system.graph.sources())[0]
    faults = FaultPlan().drop(victim, 2 * duration // 5, 3 * duration // 5)
    state = rng.getstate()

    sequential_s: Optional[float] = None
    batched_s: Optional[float] = None
    engine = ""
    for _ in range(max(1, repeats)):
        rng.setstate(state)
        start = time.perf_counter()
        sequential: List[int] = []
        for _ in range(sims):
            monitor = DisparityMonitor([sink], warmup=warmup)
            run_seed = rng.randrange(2**31)
            run_system = System(
                graph=randomize_offsets(system.graph, rng),
                response_times=system.response_times,
            )
            Simulator(
                run_system,
                duration,
                seed=run_seed,
                observers=[monitor],
                faults=faults,
                loop="general",
            ).run()
            sequential.append(monitor.disparity(sink))
        elapsed = time.perf_counter() - start
        sequential_s = elapsed if sequential_s is None else min(
            sequential_s, elapsed
        )

        rng.setstate(state)
        start = time.perf_counter()
        result = run_batch(
            system, sink, sims=sims, duration=duration, warmup=warmup,
            rng=rng, faults=faults,
        )
        elapsed = time.perf_counter() - start
        batched_s = elapsed if batched_s is None else min(batched_s, elapsed)
        engine = result.engine
        if list(result.disparities) != sequential:
            raise AssertionError(
                "faulted batched replications diverged from the general loop"
            )
    return {
        "n_tasks": n_tasks,
        "sims": sims,
        "duration_s": duration_s,
        "engine": engine,
        "victim": victim,
        "sequential_s": round(sequential_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(sequential_s / batched_s, 2) if batched_s else 0.0,
        "sims_per_s": round(sims / batched_s, 2) if batched_s else 0.0,
    }


def bench_delta_kernel(
    *,
    n_tasks: int = 20,
    candidates: int = 150,
    duration_s: float = 0.25,
    seed: int = 2023,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Delta-replayed offset candidates vs per-candidate recompile, paired.

    Models the offset-only sweep shape (``exact.search`` candidates,
    Fig. 6 replications within one graph): ``candidates`` offset
    vectors evaluated on the *same* system.  The fresh arm compiles a
    new :class:`~repro.sim.batch.CompiledScenario` per candidate —
    the pre-delta-compilation cost model, regenerating and re-sorting
    the release grid each time — while the delta arm compiles once and
    evaluates every candidate through a
    :meth:`~repro.sim.batch.CompiledScenario.with_offsets` view, which
    rebases the shared precomputed release-stream tables by vector
    shift.  Both arms use the WCET policy with one fixed execution
    seed, so every per-candidate disparity is deterministic; the arms
    are asserted identical before the (min-of-``repeats``) walls and
    their ratio are reported.  The ratio is the gate metric: it is
    machine-independent and must stay well above 1 for delta
    compilation to pay for itself.  The default shape (many candidates
    on a short horizon) mirrors the coordinate-ascent probes of
    ``exact.search``, where per-candidate compile cost is the
    dominant overhead delta compilation removes.
    """
    from repro.gen import generate_random_scenario
    from repro.sim.batch import CompiledScenario
    from repro.sim.exec_time import wcet_policy
    from repro.units import seconds

    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    system, sink = scenario.system, scenario.sink
    duration = seconds(duration_s)
    warmup = duration // 4
    periods = [task.period for task in system.graph.tasks]
    vectors = [
        tuple(rng.randint(1, period) for period in periods)
        for _ in range(candidates)
    ]

    fresh_s: Optional[float] = None
    delta_s: Optional[float] = None
    delta_replay = False
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fresh = [
            CompiledScenario(system, sink)
            .with_offsets(vector)
            .disparity(seed, duration, warmup, wcet_policy)
            for vector in vectors
        ]
        elapsed = time.perf_counter() - start
        fresh_s = elapsed if fresh_s is None else min(fresh_s, elapsed)

        start = time.perf_counter()
        compiled = CompiledScenario(system, sink)
        views = [compiled.with_offsets(vector) for vector in vectors]
        delta = [
            view.disparity(seed, duration, warmup, wcet_policy)
            for view in views
        ]
        elapsed = time.perf_counter() - start
        delta_s = elapsed if delta_s is None else min(delta_s, elapsed)
        delta_replay = all(view.delta_replay for view in views)
        if delta != fresh:
            raise AssertionError(
                "delta-replayed candidates diverged from fresh compiles"
            )
    return {
        "n_tasks": n_tasks,
        "candidates": candidates,
        "duration_s": duration_s,
        "delta_replay": delta_replay,
        "fresh_s": round(fresh_s, 4),
        "delta_s": round(delta_s, 4),
        "speedup": round(fresh_s / delta_s, 2) if delta_s else 0.0,
        "candidates_per_s": round(candidates / delta_s, 2) if delta_s else 0.0,
    }


def bench_structural_kernel(
    *,
    n_tasks: int = 20,
    candidates: int = 60,
    duration_s: float = 0.25,
    seed: int = 2023,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Structural delta views vs per-candidate recompile, paired.

    Models the period/capacity sweep shape (``explore.sensitivity``
    candidates, Algorithm 1 rounds): a mixed list of period edits
    (period scaled up on rotating compute tasks) and capacity edits
    (rotating channels) of one system, every candidate evaluated at the
    same fixed in-domain offset vector under the WCET policy.  The
    fresh arm builds the edited system and compiles a new
    :class:`~repro.sim.batch.CompiledScenario` per candidate — the
    pre-structural cost model, regenerating every grid, rank table and
    schedule from scratch — while the view arm compiles the base once
    and derives each candidate through
    :meth:`~repro.sim.batch.CompiledScenario.edit`: period candidates
    rebuild only the edited task's release grid, capacity candidates
    share the release streams *and* the memoized schedule (buffer
    sizes never affect scheduling), so the schedule is computed once
    across the whole capacity half of the sweep.  The arms are
    asserted identical before the (min-of-``repeats``) walls and their
    machine-independent ratio — the regression-gate metric — are
    reported.
    """
    from repro.gen import generate_random_scenario
    from repro.model.system import System
    from repro.sim.batch import CompiledScenario
    from repro.sim.exec_time import wcet_policy
    from repro.units import seconds

    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    system, sink = scenario.system, scenario.sink
    duration = seconds(duration_s)
    warmup = duration // 4
    vector = tuple(
        rng.randint(1, task.period) for task in system.graph.tasks
    )
    compute = [t.name for t in system.graph.tasks if not t.is_instantaneous]
    channels = [(c.src, c.dst) for c in system.graph.channels]
    # Period edits only scale periods *up*, so the fixed offset vector
    # stays in [0, T] and both arms replay through the compiled loop.
    # The 1:2 period:capacity mix mirrors the Algorithm 1 / sensitivity
    # workload, where capacity rounds outnumber period probes.
    edits: List[Tuple[str, Any]] = []
    n_period = n_capacity = 0
    for index in range(candidates):
        if index % 3 == 0 and compute:
            name = compute[n_period % len(compute)]
            factor = 2 + n_period % 3
            period = system.graph.task(name).period * factor
            edits.append(("periods", {name: period}))
            n_period += 1
        else:
            edge = channels[n_capacity % len(channels)]
            capacity = 2 + n_capacity % 5
            edits.append(("capacities", {edge: capacity}))
            n_capacity += 1

    def edited_system(kind: str, payload: Dict[Any, Any]) -> System:
        graph = system.graph.copy()
        if kind == "periods":
            from dataclasses import replace

            for name, period in payload.items():
                graph.replace_task(replace(graph.task(name), period=period))
        else:
            for (src, dst), capacity in payload.items():
                graph.set_channel_capacity(src, dst, capacity)
        return System(graph=graph, response_times=system.response_times)

    fresh_s: Optional[float] = None
    view_s: Optional[float] = None
    delta_replay = False
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fresh = [
            CompiledScenario(edited_system(kind, payload), sink)
            .with_offsets(vector)
            .disparity(seed, duration, warmup, wcet_policy)
            for kind, payload in edits
        ]
        elapsed = time.perf_counter() - start
        fresh_s = elapsed if fresh_s is None else min(fresh_s, elapsed)

        start = time.perf_counter()
        base = CompiledScenario(system, sink)
        views = [
            base.edit(**{kind: payload, "offsets": vector})
            for kind, payload in edits
        ]
        via_views = [
            view.disparity(seed, duration, warmup, wcet_policy)
            for view in views
        ]
        elapsed = time.perf_counter() - start
        view_s = elapsed if view_s is None else min(view_s, elapsed)
        delta_replay = all(view.delta_replay for view in views)
        if via_views != fresh:
            raise AssertionError(
                "structural views diverged from per-candidate recompiles"
            )
    return {
        "n_tasks": n_tasks,
        "candidates": candidates,
        "period_candidates": n_period,
        "capacity_candidates": n_capacity,
        "duration_s": duration_s,
        "delta_replay": delta_replay,
        "fresh_s": round(fresh_s, 4),
        "view_s": round(view_s, 4),
        "speedup": round(fresh_s / view_s, 2) if view_s else 0.0,
        "candidates_per_s": round(
            candidates / view_s, 2
        ) if view_s else 0.0,
    }


# ----------------------------------------------------------------------
# streaming campaign engine vs the legacy per-point loop
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _BenchStage:
    """Per-graph stage split of the synthetic campaign part."""

    generate_s: float
    analyze_s: float
    simulate_s: float


@dataclass(frozen=True)
class _BenchResult:
    """One graph of the synthetic campaign: id, observed, bound."""

    x: int
    graph_index: int
    seed: int
    sim_ms: float
    s_diff_ms: float
    timing: _BenchStage


@dataclass(frozen=True)
class _BenchRow:
    """One point (X value) of the synthetic campaign."""

    x: int
    sim_ms: float
    s_diff_ms: float


@dataclass(frozen=True)
class _BenchCampaignConfig:
    """Points-heavy campaign shape: X is a point id, not a size knob.

    The Fig. 6 parts sweep structural sizes along X, so a
    10^4-scenario campaign there would mean enormous graphs.  The
    benchmark part instead holds the scenario size fixed
    (``n_tasks``) and makes X a plain point index — the many-points /
    cheap-points shape where per-point engine overhead (task filtering,
    checkpoint rewriting, pool barriers) is measurable against real
    generate/analyze/simulate work.
    """

    x_values: Tuple[int, ...]
    graphs_per_point: int = 1
    sims_per_graph: int = 4
    duration_s: float = 0.2
    n_tasks: int = 5
    seed: int = 2023


def _bench_campaign_tasks(config: _BenchCampaignConfig):
    from repro.experiments.fig6 import GraphTask
    from repro.gen.scenario import derive_seed

    root = random.Random(config.seed)
    tasks = []
    for x in config.x_values:
        for graph_index in range(config.graphs_per_point):
            tasks.append(
                GraphTask(x=x, graph_index=graph_index, seed=derive_seed(root))
            )
    return tasks


def _bench_campaign_run_graph(config: _BenchCampaignConfig, task):
    """Generate + analyze + simulate one fixed-size graph (pure)."""
    from repro.api import AnalysisSession
    from repro.gen import generate_random_scenario
    from repro.units import seconds, to_ms

    rng = random.Random(task.seed)
    t0 = time.perf_counter()
    scenario = generate_random_scenario(config.n_tasks, rng)
    t1 = time.perf_counter()
    session = AnalysisSession(scenario.system)
    s_diff = to_ms(session.disparity(scenario.sink))
    t2 = time.perf_counter()
    duration = seconds(config.duration_s)
    sim = to_ms(
        session.observed_disparity(
            scenario.sink,
            sims=config.sims_per_graph,
            duration=duration,
            warmup=duration // 4,
            rng=rng,
        )
    )
    t3 = time.perf_counter()
    return _BenchResult(
        x=task.x,
        graph_index=task.graph_index,
        seed=task.seed,
        sim_ms=sim,
        s_diff_ms=s_diff,
        timing=_BenchStage(t1 - t0, t2 - t1, t3 - t2),
    )


def _bench_campaign_aggregate(x: int, results) -> _BenchRow:
    ordered = sorted(results, key=lambda r: r.graph_index)
    return _BenchRow(
        x=x,
        sim_ms=sum(r.sim_ms for r in ordered) / len(ordered),
        s_diff_ms=sum(r.s_diff_ms for r in ordered) / len(ordered),
    )


def _bench_campaign_decode(data: dict) -> _BenchResult:
    data = dict(data)
    data["timing"] = _BenchStage(**data["timing"])
    return _BenchResult(**data)


def _bench_campaign_format(row: _BenchRow) -> str:
    return f"x={row.x}: Sim={row.sim_ms:.1f}ms S-diff={row.s_diff_ms:.1f}ms"


def _bench_campaign_csv(rows) -> str:
    lines = ["x,sim_ms,s_diff_ms"]
    lines += [f"{r.x},{r.sim_ms:.6f},{r.s_diff_ms:.6f}" for r in rows]
    return "\n".join(lines) + "\n"


def _bench_campaign_metric(result) -> float:
    return result.sim_ms


def bench_campaign_part():
    """The synthetic points-heavy campaign as a :class:`CampaignPart`."""
    from repro.parallel.campaign import CampaignPart

    return CampaignPart(
        name="bench",
        tasks=_bench_campaign_tasks,
        run_graph=_bench_campaign_run_graph,
        aggregate=_bench_campaign_aggregate,
        row_type=_BenchRow,
        result_type=_BenchResult,
        decode_result=_bench_campaign_decode,
        format_progress=_bench_campaign_format,
        to_csv=_bench_campaign_csv,
        metric=_bench_campaign_metric,
    )


def _legacy_campaign(config: _BenchCampaignConfig, checkpoint_path: Path):
    """The pre-streaming campaign loop, faithfully reproduced.

    One pool ``map_ordered`` barrier per point over tasks selected by a
    linear filter of the full task list (O(points² × graphs) across the
    campaign), one result list per point, and — after every point — an
    atomic rewrite of the *entire* checkpoint document in the old
    whole-file JSON format (O(points²) bytes across the campaign).
    This is the arm the streaming engine is measured against.
    """
    import os

    from repro.parallel.checkpoint import config_fingerprint
    from repro.parallel.engine import PoolRunner

    tasks = _bench_campaign_tasks(config)
    rows = []
    saved_rows: Dict[str, dict] = {}
    order: List[str] = []
    fingerprint = config_fingerprint("bench", config)
    from dataclasses import asdict
    from functools import partial

    with PoolRunner(1) as pool:
        for x in config.x_values:
            point_tasks = [task for task in tasks if task.x == x]
            results, _stats = pool.map_ordered(
                partial(_bench_campaign_run_graph, config), point_tasks
            )
            row = _bench_campaign_aggregate(x, results)
            rows.append(row)
            key = str(x)
            saved_rows[key] = asdict(row)
            order.append(key)
            payload = {
                "fingerprint": fingerprint,
                "order": order,
                "rows": saved_rows,
            }
            tmp = f"{checkpoint_path}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, str(checkpoint_path))
    return rows


def bench_campaign_kernel(
    *,
    points: int = 1250,
    graphs_per_point: int = 1,
    sims_per_graph: int = 8,
    duration_s: float = 0.2,
    n_tasks: int = 5,
    seed: int = 2023,
) -> Dict[str, Any]:
    """Streaming campaign engine vs the legacy per-point loop, paired.

    Runs the same points-heavy campaign (``points × graphs_per_point ×
    sims_per_graph`` simulated scenarios, checkpointing enabled in both
    arms) twice on one worker: once through the legacy loop
    (:func:`_legacy_campaign` — per-point task filter, per-point result
    lists, whole-document checkpoint rewrite after every point) and
    once through the streaming engine
    (:func:`repro.parallel.campaign.run_campaign` — single adaptive
    map, bounded accumulators, O(1) JSONL appends).  Rows are asserted
    identical, the walls and their ratio are reported, and the
    streaming arm's **measured** peak residency
    (``peak_in_flight_results`` from the accumulator, vs the legacy
    arm's whole-campaign row dict) is recorded — the bounded-memory
    evidence next to the throughput claim.
    """
    import tempfile

    from repro.parallel.campaign import run_campaign

    config = _BenchCampaignConfig(
        x_values=tuple(range(points)),
        graphs_per_point=graphs_per_point,
        sims_per_graph=sims_per_graph,
        duration_s=duration_s,
        n_tasks=n_tasks,
        seed=seed,
    )
    part = bench_campaign_part()
    with tempfile.TemporaryDirectory() as tmpdir:
        start = time.perf_counter()
        legacy_rows = _legacy_campaign(config, Path(tmpdir) / "legacy.ckpt")
        legacy_s = time.perf_counter() - start

        start = time.perf_counter()
        stream_rows, timing = run_campaign(
            part,
            config,
            jobs=1,
            checkpoint=str(Path(tmpdir) / "stream.ckpt"),
        )
        streaming_s = time.perf_counter() - start
    if stream_rows != legacy_rows:
        raise AssertionError(
            "streaming campaign rows diverged from the legacy loop"
        )
    stream = timing.stream or {}
    scenarios = points * graphs_per_point * sims_per_graph
    return {
        "points": points,
        "graphs_per_point": graphs_per_point,
        "sims_per_graph": sims_per_graph,
        "n_tasks": n_tasks,
        "duration_s": duration_s,
        "scenarios": scenarios,
        "legacy_s": round(legacy_s, 4),
        "streaming_s": round(streaming_s, 4),
        "speedup": round(legacy_s / streaming_s, 2) if streaming_s else 0.0,
        "scenarios_per_s": round(
            scenarios / streaming_s, 1
        ) if streaming_s else 0.0,
        "peak_in_flight_results": stream.get("peak_in_flight_results", 0),
        "peak_points_open": stream.get("peak_points_open", 0),
        "legacy_resident_rows": points,
    }


def bench_cluster_kernel(
    *,
    points: int = 200,
    graphs_per_point: int = 1,
    sims_per_graph: int = 2,
    duration_s: float = 0.2,
    n_tasks: int = 5,
    seed: int = 2023,
    shards: int = 2,
    workers: int = 2,
) -> Dict[str, Any]:
    """Cluster coordinator vs a single process pool, paired, rows equal.

    Runs the same points-heavy campaign twice: once through
    :func:`repro.parallel.campaign.run_campaign` with a ``workers``-wide
    process pool (the single-machine fast path) and once through
    :func:`repro.parallel.cluster.run_cluster` with ``shards`` shards on
    ``workers`` local worker subprocesses — subprocess launch, shard
    JSONL writes, file-tail polling and incremental merge included.
    Rows are asserted identical (the coordinator's byte-identity
    contract), and the entry reports the coordinator's **overhead
    ratio** over the plain pool — the price of fault tolerance, which
    amortizes as campaigns grow and must stay small enough to be worth
    paying on a single machine.
    """
    import tempfile

    from repro.parallel.campaign import run_campaign
    from repro.parallel.cluster import run_cluster

    config = _BenchCampaignConfig(
        x_values=tuple(range(points)),
        graphs_per_point=graphs_per_point,
        sims_per_graph=sims_per_graph,
        duration_s=duration_s,
        n_tasks=n_tasks,
        seed=seed,
    )
    part = bench_campaign_part()
    with tempfile.TemporaryDirectory() as tmpdir:
        start = time.perf_counter()
        pool_rows, _ = run_campaign(part, config, jobs=workers)
        pool_s = time.perf_counter() - start

        start = time.perf_counter()
        cluster_rows, report = run_cluster(
            part,
            config,
            shards=shards,
            workers=workers,
            out_dir=tmpdir,
            heartbeat_timeout=300.0,
            poll_s=0.02,
        )
        cluster_s = time.perf_counter() - start
    if cluster_rows != pool_rows:
        raise AssertionError(
            "cluster coordinator rows diverged from the single-pool run"
        )
    if report.deaths:
        raise AssertionError(
            f"benchmark run saw {report.deaths} unexpected worker death(s)"
        )
    scenarios = points * graphs_per_point * sims_per_graph
    return {
        "points": points,
        "graphs_per_point": graphs_per_point,
        "sims_per_graph": sims_per_graph,
        "n_tasks": n_tasks,
        "duration_s": duration_s,
        "scenarios": scenarios,
        "shards": shards,
        "workers": workers,
        "pool_s": round(pool_s, 4),
        "cluster_s": round(cluster_s, 4),
        "overhead": round(cluster_s / pool_s, 2) if pool_s else 0.0,
        "scenarios_per_s": round(
            scenarios / cluster_s, 1
        ) if cluster_s else 0.0,
    }


# ----------------------------------------------------------------------
# analysis scaling (prefix-shared backward bounds)
# ----------------------------------------------------------------------

def _diamond_ladder(levels: int, width: int = 2):
    """``levels`` fork/join stages of ``width`` branches each.

    The graph has ``width**levels`` source chains of identical length
    ``2*levels + 1``, so growing ``width`` multiplies the chain count
    without lengthening any chain — isolating the prefix-sharing
    effect from per-chain traversal cost.  Every task runs on its own
    unit at negligible utilization, so the system is trivially
    schedulable and the benchmark measures *analysis* cost only.
    """
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task
    from repro.units import ms

    graph = CauseEffectGraph()

    def add(name: str, *, sensor: bool = False) -> str:
        # Sources are instantaneous sensors in this model (W = B = 0).
        graph.add_task(
            Task(
                name,
                period=ms(10),
                wcet=0 if sensor else ms(1),
                bcet=0 if sensor else ms(1) // 2,
                offset=0,
                ecu=f"u_{name}",
                priority=1,
            )
        )
        return name

    prev = add("src", sensor=True)
    for level in range(levels):
        join = add(f"j{level}")
        for branch in range(width):
            middle = add(f"b{level}_{branch}")
            graph.add_channel(prev, middle)
            graph.add_channel(middle, join)
        prev = join
    return graph, prev


def bench_analysis_scaling(
    *,
    levels: int = 6,
    widths: Sequence[int] = (1, 2, 3, 5),
    repeats: int = 3,
) -> List[Dict[str, Any]]:
    """Per-chain cost of a full backward-bounds pass as chains multiply.

    For each ``width`` the ladder has ``width**levels`` equal-length
    chains into the sink; the row reports the (min-of-``repeats``) wall
    time of the complete pass — building a fresh
    :class:`BackwardBoundsTable` and computing WCBT/BCBT for every
    chain — divided by the chain count.  The table interns per-edge and
    per-task ingredients once and accumulates along shared prefixes, so
    that fixed cost amortizes and the per-chain microseconds *decrease*
    as the count grows — the point of the DAG-shared DP, asserted by
    the benchmark suite and the regression gate.
    """
    from repro.chains.backward import BackwardBoundsTable
    from repro.model.chain import enumerate_source_chains
    from repro.model.system import System

    rows: List[Dict[str, Any]] = []
    for width in widths:
        graph, sink = _diamond_ladder(levels, width)
        system = System.build(graph)
        chains = enumerate_source_chains(system.graph, sink)
        wall = None
        for _ in range(repeats):
            start = time.perf_counter()
            table = BackwardBoundsTable(system)
            for chain in chains:
                table.bounds(chain)
            elapsed = time.perf_counter() - start
            wall = elapsed if wall is None else min(wall, elapsed)
        rows.append(
            {
                "levels": levels,
                "width": width,
                "chains": len(chains),
                "wall_s": round(wall, 4),
                "per_chain_us": round(wall / len(chains) * 1e6, 2),
            }
        )
    return rows


# ----------------------------------------------------------------------
# the committed benchmark document
# ----------------------------------------------------------------------

#: Benchmark sections of :func:`run_benchmarks`, in document order.
KERNELS = (
    "sim", "batch", "let", "columnar", "fault", "delta", "structural",
    "campaign", "cluster", "analysis",
)


def run_benchmarks(
    *,
    quick: bool = False,
    kernels: Sequence[str] = KERNELS,
) -> Dict[str, Any]:
    """All benchmark metrics as one JSON-serializable document.

    ``quick=True`` shrinks horizons for CI (the reported metrics are
    throughputs and ratios, so they stay comparable with a full run on
    the same machine).  ``kernels`` selects which sections to measure
    (any subset of :data:`KERNELS`); :func:`format_benchmarks` and
    :func:`compare_to_baseline` skip absent sections.  The ``recorded``
    block preserves the measured end-to-end campaign times of the
    optimization PRs for context; it is *not* re-measured here and not
    part of the regression gate.
    """
    unknown = set(kernels) - set(KERNELS)
    if unknown:
        raise ValueError(f"unknown benchmark kernels: {sorted(unknown)}")
    document: Dict[str, Any] = {"schema": SCHEMA_VERSION, "quick": quick}
    if "sim" in kernels:
        document["kernel"] = (
            bench_sim_kernel(n_tasks=20, sims=3, duration_s=1.0)
            if quick
            else bench_sim_kernel()
        )
    if "batch" in kernels:
        document["batch"] = (
            bench_batch_kernel(sims=8, duration_s=2.0, repeats=2)
            if quick
            else bench_batch_kernel()
        )
    if "let" in kernels:
        document["let"] = (
            bench_let_kernel(sims=8, duration_s=2.0, repeats=2)
            if quick
            else bench_let_kernel()
        )
    if "columnar" in kernels:
        document["columnar"] = (
            bench_columnar_kernel(sims=12, duration_s=2.0, repeats=2)
            if quick
            else bench_columnar_kernel()
        )
    if "fault" in kernels:
        document["fault"] = (
            bench_fault_kernel(sims=8, duration_s=2.0, repeats=2)
            if quick
            else bench_fault_kernel()
        )
    if "delta" in kernels:
        document["delta"] = (
            bench_delta_kernel(candidates=40, repeats=2)
            if quick
            else bench_delta_kernel()
        )
    if "structural" in kernels:
        document["structural"] = (
            bench_structural_kernel(candidates=24, repeats=2)
            if quick
            else bench_structural_kernel()
        )
    if "campaign" in kernels:
        document["campaign"] = (
            bench_campaign_kernel(points=120, sims_per_graph=2)
            if quick
            else bench_campaign_kernel()
        )
    if "cluster" in kernels:
        document["cluster"] = (
            bench_cluster_kernel(points=24, sims_per_graph=2)
            if quick
            else bench_cluster_kernel()
        )
    if "analysis" in kernels:
        document["analysis"] = (
            bench_analysis_scaling(levels=4, widths=(1, 2, 4))
            if quick
            else bench_analysis_scaling()
        )
    return document


def format_benchmarks(results: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_benchmarks` document."""
    lines = []
    kernel = results.get("kernel")
    if kernel is not None:
        sims_rate = kernel.get("sims_per_s")
        rate = (
            f", {sims_rate:,.2f} sims/s" if sims_rate is not None else ""
        )
        lines.append(
            f"sim kernel   {kernel['jobs']:>9} jobs in {kernel['wall_s']:.2f}s"
            f"  -> {kernel['jobs_per_s']:,.0f} jobs/s{rate}"
            f"  ({kernel['n_tasks']} tasks, {kernel['sims']} sims, "
            f"{kernel['duration_s']}s horizon)"
        )
    batch = results.get("batch")
    if batch is not None:
        lines.append(
            f"batch        {batch['sims']:>9} sims"
            f"  {batch['sequential_s']:.2f}s sequential ->"
            f" {batch['batched_s']:.2f}s batched"
            f"  ({batch['speedup']:.2f}x, {batch['sims_per_s']:,.1f} sims/s)"
        )
    let = results.get("let")
    if let is not None:
        lines.append(
            f"let batch    {let['sims']:>9} sims"
            f"  {let['sequential_s']:.2f}s general loop ->"
            f" {let['batched_s']:.2f}s batched"
            f"  ({let['speedup']:.2f}x, {let['sims_per_s']:,.1f} sims/s)"
        )
    columnar = results.get("columnar")
    if columnar is not None:
        lines.append(
            f"columnar     {columnar['sims']:>9} sims"
            f"  {columnar['replay_s']:.2f}s replayed ->"
            f" {columnar['columnar_s']:.2f}s columnar"
            f"  ({columnar['speedup']:.2f}x, "
            f"{columnar['sims_per_s']:,.1f} sims/s, "
            f"engine {columnar['engine']})"
        )
    fault = results.get("fault")
    if fault is not None:
        lines.append(
            f"fault        {fault['sims']:>9} sims"
            f"  {fault['sequential_s']:.2f}s general loop ->"
            f" {fault['batched_s']:.2f}s masked batched"
            f"  ({fault['speedup']:.2f}x, "
            f"{fault['sims_per_s']:,.1f} sims/s, "
            f"engine {fault['engine']})"
        )
    delta = results.get("delta")
    if delta is not None:
        lines.append(
            f"delta        {delta['candidates']:>9} cands"
            f"  {delta['fresh_s']:.2f}s recompiled ->"
            f" {delta['delta_s']:.2f}s delta-replayed"
            f"  ({delta['speedup']:.2f}x, "
            f"{delta['candidates_per_s']:,.1f} cands/s)"
        )
    structural = results.get("structural")
    if structural is not None:
        lines.append(
            f"structural   {structural['candidates']:>9} edits"
            f"  {structural['fresh_s']:.2f}s recompiled ->"
            f" {structural['view_s']:.2f}s via views"
            f"  ({structural['speedup']:.2f}x, "
            f"{structural['candidates_per_s']:,.1f} cands/s)"
        )
    campaign = results.get("campaign")
    if campaign is not None:
        lines.append(
            f"campaign     {campaign['scenarios']:>9} scens"
            f"  {campaign['legacy_s']:.2f}s legacy loop ->"
            f" {campaign['streaming_s']:.2f}s streaming"
            f"  ({campaign['speedup']:.2f}x, "
            f"{campaign['scenarios_per_s']:,.1f} scens/s, "
            f"peak {campaign['peak_in_flight_results']} results in flight "
            f"vs {campaign['legacy_resident_rows']} resident rows)"
        )
    cluster = results.get("cluster")
    if cluster is not None:
        lines.append(
            f"cluster      {cluster['scenarios']:>9} scens"
            f"  {cluster['pool_s']:.2f}s single pool ->"
            f" {cluster['cluster_s']:.2f}s coordinated"
            f"  ({cluster['overhead']:.2f}x overhead, "
            f"{cluster['scenarios_per_s']:,.1f} scens/s, "
            f"{cluster['shards']} shards on {cluster['workers']} workers)"
        )
    for row in results.get("analysis", ()):
        lines.append(
            f"analysis     {row['chains']:>9} chains in {row['wall_s']:.3f}s"
            f"  -> {row['per_chain_us']:.1f} us/chain"
            f"  ({row['levels']} levels x width {row['width']})"
        )
    if "recorded" in results:
        rec = results["recorded"]
        lines.append(
            f"recorded     fig6 AB default: {rec['campaign_ab_baseline_s']}s"
            f" -> {rec['campaign_ab_optimized_s']}s"
            f" ({rec['campaign_ab_speedup']}x single worker)"
        )
        lines.append(
            f"recorded     fig6 CD default: {rec['campaign_cd_baseline_s']}s"
            f" -> {rec['campaign_cd_optimized_s']}s"
            f" ({rec['campaign_cd_speedup']}x single worker)"
        )
        if "batch_ab_sim_stage_speedup" in rec:
            lines.append(
                f"recorded     fig6 AB sim stage: "
                f"{rec['batch_ab_sim_stage_speedup']}x with batched "
                f"replications"
            )
    return "\n".join(lines)


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressions of ``current`` vs the committed ``baseline``.

    Returns one message per metric that regressed by more than
    ``tolerance`` (relative).  Only ratio- and throughput-style metrics
    are compared — ``jobs_per_s`` must not drop, the batch ``speedup``
    (sequential wall over batched wall, a machine-independent ratio)
    must not drop, and ``per_chain_us`` (at each ladder shape present
    in both documents) must not rise — so a quick run can be gated
    against a full-run baseline.  Sections absent from either document
    are skipped, keeping old baselines comparable.
    """
    regressions: List[str] = []
    cur_kernel = current.get("kernel")
    base_kernel = baseline.get("kernel")
    if cur_kernel is not None and base_kernel is not None:
        cur_rate = cur_kernel["jobs_per_s"]
        base_rate = base_kernel["jobs_per_s"]
        if cur_rate < base_rate * (1.0 - tolerance):
            regressions.append(
                f"sim kernel throughput {cur_rate:,.0f} jobs/s is "
                f"{(1 - cur_rate / base_rate) * 100:.0f}% below the "
                f"committed {base_rate:,.0f} jobs/s"
            )
    cur_batch = current.get("batch")
    base_batch = baseline.get("batch")
    if cur_batch is not None and base_batch is not None:
        cur_speedup = cur_batch["speedup"]
        base_speedup = base_batch["speedup"]
        if cur_speedup < base_speedup * (1.0 - tolerance):
            regressions.append(
                f"batch replication speedup {cur_speedup:.2f}x is "
                f"{(1 - cur_speedup / base_speedup) * 100:.0f}% below the "
                f"committed {base_speedup:.2f}x"
            )
    cur_let = current.get("let")
    base_let = baseline.get("let")
    if cur_let is not None and base_let is not None:
        cur_speedup = cur_let["speedup"]
        base_speedup = base_let["speedup"]
        if cur_speedup < base_speedup * (1.0 - tolerance):
            regressions.append(
                f"LET batch speedup {cur_speedup:.2f}x is "
                f"{(1 - cur_speedup / base_speedup) * 100:.0f}% below the "
                f"committed {base_speedup:.2f}x"
            )
    cur_columnar = current.get("columnar")
    base_columnar = baseline.get("columnar")
    if cur_columnar is not None and base_columnar is not None:
        cur_speedup = cur_columnar["speedup"]
        base_speedup = base_columnar["speedup"]
        if cur_speedup < base_speedup * (1.0 - tolerance):
            regressions.append(
                f"columnar replay speedup {cur_speedup:.2f}x is "
                f"{(1 - cur_speedup / base_speedup) * 100:.0f}% below the "
                f"committed {base_speedup:.2f}x"
            )
    cur_fault = current.get("fault")
    base_fault = baseline.get("fault")
    if cur_fault is not None and base_fault is not None:
        cur_speedup = cur_fault["speedup"]
        base_speedup = base_fault["speedup"]
        if cur_speedup < base_speedup * (1.0 - tolerance):
            regressions.append(
                f"faulted batch speedup {cur_speedup:.2f}x is "
                f"{(1 - cur_speedup / base_speedup) * 100:.0f}% below the "
                f"committed {base_speedup:.2f}x"
            )
    cur_delta = current.get("delta")
    base_delta = baseline.get("delta")
    if cur_delta is not None and base_delta is not None:
        cur_speedup = cur_delta["speedup"]
        base_speedup = base_delta["speedup"]
        if cur_speedup < base_speedup * (1.0 - tolerance):
            regressions.append(
                f"delta-replay speedup {cur_speedup:.2f}x is "
                f"{(1 - cur_speedup / base_speedup) * 100:.0f}% below the "
                f"committed {base_speedup:.2f}x"
            )
    cur_structural = current.get("structural")
    base_structural = baseline.get("structural")
    if cur_structural is not None and base_structural is not None:
        cur_speedup = cur_structural["speedup"]
        base_speedup = base_structural["speedup"]
        if cur_speedup < base_speedup * (1.0 - tolerance):
            regressions.append(
                f"structural-view speedup {cur_speedup:.2f}x is "
                f"{(1 - cur_speedup / base_speedup) * 100:.0f}% below the "
                f"committed {base_speedup:.2f}x"
            )
    cur_campaign = current.get("campaign")
    base_campaign = baseline.get("campaign")
    if (
        cur_campaign is not None
        and base_campaign is not None
        # The legacy loop's overhead is quadratic in the point count, so
        # the ratio is only comparable at the same campaign shape (the
        # quick shape is much smaller than the committed full shape).
        and cur_campaign["points"] == base_campaign["points"]
        and cur_campaign["sims_per_graph"] == base_campaign["sims_per_graph"]
    ):
        cur_speedup = cur_campaign["speedup"]
        base_speedup = base_campaign["speedup"]
        if cur_speedup < base_speedup * (1.0 - tolerance):
            regressions.append(
                f"streaming campaign speedup {cur_speedup:.2f}x is "
                f"{(1 - cur_speedup / base_speedup) * 100:.0f}% below the "
                f"committed {base_speedup:.2f}x"
            )
    cur_cluster = current.get("cluster")
    base_cluster = baseline.get("cluster")
    if (
        cur_cluster is not None
        and base_cluster is not None
        # The coordinator's fixed costs (subprocess launch, polling)
        # amortize over campaign size, so the overhead ratio is only
        # comparable at the same shape.
        and cur_cluster["points"] == base_cluster["points"]
        and cur_cluster["sims_per_graph"] == base_cluster["sims_per_graph"]
        and cur_cluster["shards"] == base_cluster["shards"]
    ):
        cur_overhead = cur_cluster["overhead"]
        base_overhead = base_cluster["overhead"]
        if cur_overhead > base_overhead * (1.0 + tolerance):
            regressions.append(
                f"cluster coordinator overhead {cur_overhead:.2f}x is "
                f"{(cur_overhead / base_overhead - 1) * 100:.0f}% above the "
                f"committed {base_overhead:.2f}x"
            )
    base_by_shape = {
        (row["levels"], row["width"]): row
        for row in baseline.get("analysis", ())
    }
    for row in current.get("analysis", ()):
        base_row = base_by_shape.get((row["levels"], row["width"]))
        if base_row is None:
            continue
        if row["per_chain_us"] > base_row["per_chain_us"] * (1.0 + tolerance):
            regressions.append(
                f"backward-bounds cost at {row['chains']} chains is "
                f"{row['per_chain_us']:.1f} us/chain vs committed "
                f"{base_row['per_chain_us']:.1f} us/chain"
            )
    return regressions


def load_baseline(path: Path) -> Optional[Dict[str, Any]]:
    """The committed benchmark document, or ``None`` if absent."""
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)
